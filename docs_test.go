// Documentation gates: every relative link in README.md and docs/
// must resolve to a real file (offline, path-existence only), and
// every fenced code block tagged `go` must be a complete file that
// compiles against this module — docs that drift from the code fail
// CI instead of rotting.
package eyeorg_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("reading docs/: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 4 {
		t.Fatalf("expected README + at least 3 docs pages, found %v", files)
	}
	return files
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinkCheck verifies every relative link target exists on
// disk. External links (http/https/mailto) are skipped — the check
// must pass offline.
func TestDocsLinkCheck(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCodeBlocks(string(body)), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				// Pure fragment: an anchor within the same file. Anchor
				// names aren't verified (GitHub's slugger is out of
				// scope); the file itself obviously exists.
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), path)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, target, resolved, err)
			}
			_ = frag
		}
	}
}

// stripCodeBlocks removes fenced code blocks so link syntax inside
// examples doesn't trip the checker.
func stripCodeBlocks(s string) string {
	var out strings.Builder
	inFence := false
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// goSnippets extracts the contents of every ```go fenced block.
func goSnippets(t *testing.T, file string) []string {
	t.Helper()
	body, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snippets []string
	var cur strings.Builder
	inGo := false
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case !inGo && trimmed == "```go":
			inGo = true
			cur.Reset()
		case inGo && trimmed == "```":
			inGo = false
			snippets = append(snippets, cur.String())
		case inGo:
			cur.WriteString(line)
			cur.WriteByte('\n')
		}
	}
	return snippets
}

// TestDocsGoSnippets compiles every go-tagged block in the docs. Each
// block must be a complete file (starting with a package clause);
// blocks land in a throwaway module that replaces this module's path
// with the repo root, so imports of github.com/eyeorg/eyeorg resolve
// locally and the test runs offline.
func TestDocsGoSnippets(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, file := range docFiles(t) {
		for i, snippet := range goSnippets(t, file) {
			total++
			if !strings.HasPrefix(strings.TrimSpace(snippet), "package ") {
				t.Errorf("%s: go snippet %d must be a complete file starting with a package clause", file, i+1)
				continue
			}
			dir := t.TempDir()
			mod := fmt.Sprintf("module docsnippet\n\ngo 1.22\n\nrequire github.com/eyeorg/eyeorg v0.0.0\n\nreplace github.com/eyeorg/eyeorg => %s\n", root)
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(mod), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(snippet), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "build", "./...")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("%s: go snippet %d does not compile:\n%s\n--- snippet ---\n%s", file, i+1, out, snippet)
			}
		}
	}
	if total == 0 {
		t.Fatal("no go-tagged snippets found in the docs — the extraction is broken")
	}
}
