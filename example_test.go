package eyeorg_test

import (
	"fmt"

	"github.com/eyeorg/eyeorg"
)

// ExampleCaptureSite shows the webpeg capture flow: generate a site,
// capture it like §3.1 (primer load, repeated trials, median-onload
// selection), and read the PLT metrics. Everything is seeded, so this
// output is reproducible.
func ExampleCaptureSite() {
	page := eyeorg.GenerateCorpus(2016, 1, 1.0)[0]
	cap, err := eyeorg.CaptureSite(page, eyeorg.CaptureConfig{Seed: 1, Loads: 5})
	if err != nil {
		fmt.Println("capture failed:", err)
		return
	}
	plt := eyeorg.ComputePLT(cap.Video, cap.Selected.OnLoad)
	fmt.Printf("trials: %d\n", len(cap.OnLoads))
	fmt.Printf("onload after first paint: %v\n", plt.OnLoad > plt.FirstVisualChange)
	fmt.Printf("last change after onload: %v\n", plt.LastVisualChange > plt.OnLoad)
	// Output:
	// trials: 5
	// onload after first paint: true
	// last change after onload: true
}

// ExampleRunCampaign runs a small timeline campaign end to end and
// applies the §4.3 filtering pipeline.
func ExampleRunCampaign() {
	pages := eyeorg.GenerateCorpus(2016, 4, 0.75)
	campaign, err := eyeorg.BuildTimelineCampaign("docs", pages, eyeorg.CaptureConfig{Seed: 3, Loads: 3})
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	run, err := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, 60)
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	sum := run.Outcome.Summary
	fmt.Printf("participants: %d\n", sum.Total)
	fmt.Printf("some filtered: %v\n", sum.Dropped() > 0 && sum.Kept > sum.Dropped())
	fmt.Printf("videos with responses: %d\n", len(eyeorg.TimelineByVideo(run.KeptRecords())))
	// Output:
	// participants: 60
	// some filtered: true
	// videos with responses: 4
}
