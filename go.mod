module github.com/eyeorg/eyeorg

go 1.22
