// Tests of the public facade plus the repository's broadest integration
// test: a simulated crowd driving the Eyeorg web service over real HTTP,
// from campaign creation through video upload, CAPTCHA-gated sessions,
// engagement events and responses, to filtered results — the §3 loop
// end to end.
package eyeorg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/eyeorg/eyeorg/internal/crowd"
	"github.com/eyeorg/eyeorg/internal/metrics"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/rng"
	"github.com/eyeorg/eyeorg/internal/survey"
)

func TestFacadeCorpusAndCapture(t *testing.T) {
	pages := GenerateCorpus(1, 3, 1.0)
	if len(pages) != 3 {
		t.Fatalf("corpus = %d", len(pages))
	}
	cap, err := CaptureSite(pages[0], CaptureConfig{Seed: 1, Loads: 3})
	if err != nil {
		t.Fatal(err)
	}
	plt := ComputePLT(cap.Video, cap.Selected.OnLoad)
	if plt.OnLoad <= 0 || plt.SpeedIndex <= 0 {
		t.Fatalf("metrics implausible: %+v", plt)
	}
	// Codec round-trip through the public API.
	decoded, err := DecodeVideo(EncodeVideo(cap.Video))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Duration() != cap.Video.Duration() {
		t.Fatal("codec round-trip changed duration")
	}
}

func TestFacadeCampaignPipeline(t *testing.T) {
	pages := GenerateCorpus(2, 4, 0.75)
	campaign, err := BuildTimelineCampaign("facade", pages, CaptureConfig{Seed: 2, Loads: 3})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunCampaign(campaign, CrowdFlower, 60)
	if err != nil {
		t.Fatal(err)
	}
	uplt := WisdomOfCrowd(TimelineByVideo(run.KeptRecords()))
	if len(uplt) == 0 {
		t.Fatal("no per-video UPLT")
	}
	row := run.Stats()
	if row.Participants != 60 || row.CostDollars <= 0 {
		t.Fatalf("stats row wrong: %+v", row)
	}
}

func TestFacadeBlockers(t *testing.T) {
	for _, b := range []*Blocker{AdBlock(), Ghostery(), UBlock()} {
		if b == nil || b.List.Len() == 0 {
			t.Fatal("blocker profile empty")
		}
	}
	if _, err := BlockerNamed("nope"); err == nil {
		t.Fatal("unknown blocker accepted")
	}
}

// --- the full-stack integration test ---

// apiClient drives the platform API over real HTTP.
type apiClient struct {
	t    *testing.T
	base string
}

func (c *apiClient) post(path string, body any, out any) int {
	c.t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case []byte:
		buf.Write(b)
	default:
		if err := json.NewEncoder(&buf).Encode(b); err != nil {
			c.t.Fatal(err)
		}
	}
	resp, err := http.Post(c.base+path, "application/json", &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (c *apiClient) get(path string, out any) int {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestEndToEndCrowdOverHTTP(t *testing.T) {
	// 1. Capture a real (simulated) corpus with webpeg.
	pages := GenerateAdCorpus(31, 3)
	captures, err := Captures(pages, CaptureConfig{Seed: 31, Loads: 3})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Stand up the web service and create a campaign with the videos.
	srv := httptest.NewServer(NewPlatformHandler())
	defer srv.Close()
	api := &apiClient{t: t, base: srv.URL}

	var created struct {
		ID string `json:"id"`
	}
	if code := api.post("/api/v1/campaigns", map[string]string{"name": "e2e", "kind": "timeline"}, &created); code != http.StatusCreated {
		t.Fatalf("create campaign: %d", code)
	}
	videoIDs := map[string]int{} // platform video id -> capture index
	for i, cap := range captures {
		var added struct {
			ID string `json:"id"`
		}
		if code := api.post("/api/v1/campaigns/"+created.ID+"/videos", EncodeVideo(cap.Video), &added); code != http.StatusCreated {
			t.Fatalf("upload video: %d", code)
		}
		videoIDs[added.ID] = i
	}

	// 3. A simulated crowd takes the tests through the HTTP API: each
	// participant downloads their videos, answers with their perception
	// model, and uploads engagement traces.
	pop := crowd.NewPopulation(rng.New(31), crowd.PopulationConfig{Class: crowd.Paid, N: 30})
	completed := 0
	for pi, p := range pop {
		var joined struct {
			Session string `json:"session"`
			Tests   []struct {
				TestID  string `json:"test_id"`
				VideoID string `json:"video_id"`
				Control bool   `json:"control"`
			} `json:"tests"`
		}
		code := api.post("/api/v1/sessions", map[string]any{
			"campaign": created.ID,
			"worker":   map[string]string{"id": fmt.Sprintf("w-%03d", pi), "gender": p.Gender, "country": p.Country},
			"captcha":  "not-a-robot",
		}, &joined)
		if code != http.StatusCreated {
			t.Fatalf("join: %d", code)
		}
		api.post("/api/v1/sessions/"+joined.Session+"/events",
			map[string]any{"instruction_ms": p.InstructionTime().Milliseconds()}, nil)

		for _, tt := range joined.Tests {
			// Download and decode the video like a browser would.
			resp, err := http.Get(srv.URL + "/api/v1/videos/" + tt.VideoID)
			if err != nil {
				t.Fatal(err)
			}
			var raw bytes.Buffer
			_, _ = raw.ReadFrom(resp.Body)
			resp.Body.Close()
			v, err := DecodeVideo(raw.Bytes())
			if err != nil {
				t.Fatalf("video %s undecodable over HTTP: %v", tt.VideoID, err)
			}

			// Perceive and answer using the crowd model.
			capIdx := videoIDs[tt.VideoID]
			curves := metrics.Curves(v, nil)
			test := &survey.TimelineTest{VideoID: tt.VideoID, Video: v, Control: tt.Control}
			answer := p.AnswerTimeline(test, curves)

			api.post("/api/v1/sessions/"+joined.Session+"/events", map[string]any{
				"video_id":         tt.VideoID,
				"load_ms":          answer.Trace.LoadTime.Milliseconds(),
				"time_on_video_ms": answer.Trace.TimeOnVideo.Milliseconds(),
				"plays":            answer.Trace.Plays,
				"seeks":            answer.Trace.Seeks,
				"watched_fraction": answer.Trace.WatchedFraction,
				"out_of_focus_ms":  answer.Trace.OutOfFocus.Milliseconds(),
			}, nil)

			var done struct {
				SessionComplete bool `json:"session_complete"`
			}
			code := api.post("/api/v1/sessions/"+joined.Session+"/responses", map[string]any{
				"test_id":         tt.TestID,
				"slider_ms":       float64(answer.Slider.Milliseconds()),
				"helper_ms":       float64(answer.Helper.Milliseconds()),
				"submitted_ms":    float64(answer.Submitted.Milliseconds()),
				"accepted_helper": answer.AcceptedHelper,
				"kept_original":   !answer.AcceptedHelper,
			}, &done)
			if code != http.StatusAccepted {
				t.Fatalf("response rejected: %d", code)
			}
			if done.SessionComplete {
				completed++
			}
			_ = capIdx
		}
	}
	if completed != len(pop) {
		t.Fatalf("completed sessions = %d, want %d", completed, len(pop))
	}

	// 4. The results endpoint runs the filtering pipeline.
	var results struct {
		Participants int `json:"participants"`
		Kept         int `json:"kept"`
		PerVideo     map[string]struct {
			Responses int     `json:"responses"`
			MeanUPLT  float64 `json:"mean_uplt_s"`
		} `json:"per_video"`
	}
	if code := api.get("/api/v1/campaigns/"+created.ID+"/results", &results); code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	if results.Participants != len(pop) {
		t.Fatalf("participants = %d, want %d", results.Participants, len(pop))
	}
	if results.Kept == 0 || results.Kept > results.Participants {
		t.Fatalf("kept = %d of %d, implausible", results.Kept, results.Participants)
	}
	if len(results.PerVideo) == 0 {
		t.Fatal("no per-video aggregates")
	}
	for id, ag := range results.PerVideo {
		if ag.Responses == 0 || ag.MeanUPLT <= 0 {
			t.Fatalf("video %s aggregate empty: %+v", id, ag)
		}
		// The crowd's mean UPLT should land inside the video timeline.
		idx := videoIDs[id]
		dur := captures[idx].Video.Duration().Seconds()
		if ag.MeanUPLT > dur {
			t.Fatalf("video %s mean UPLT %.2fs beyond video end %.2fs", id, ag.MeanUPLT, dur)
		}
	}
	_ = platform.BanThreshold // document the linkage for readers
	_ = time.Second
}
