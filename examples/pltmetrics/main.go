// pltmetrics runs a miniature version of the paper's §5.2 question — do
// machine PLT metrics represent human perception? — by running a small
// timeline campaign and correlating the crowd's filtered
// UserPerceivedPLT with each metric across sites.
package main

import (
	"fmt"
	"log"

	"github.com/eyeorg/eyeorg"
	"github.com/eyeorg/eyeorg/internal/stats"
)

func main() {
	log.SetFlags(0)

	const sites = 12
	pages := eyeorg.GenerateCorpus(7, sites, 0.65)
	campaign, err := eyeorg.BuildTimelineCampaign("plt-demo", pages,
		eyeorg.CaptureConfig{Seed: 7, Loads: 3})
	if err != nil {
		log.Fatal(err)
	}
	run, err := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, 150)
	if err != nil {
		log.Fatal(err)
	}
	sum := run.Outcome.Summary
	fmt.Printf("campaign: %d participants, %d kept after filtering (%d engagement, %d soft, %d control)\n",
		sum.Total, sum.Kept, sum.Engagement(), sum.Soft, sum.Control)

	// Mean wisdom-filtered UPLT per video, paired with the metrics.
	uplt := eyeorg.WisdomOfCrowd(eyeorg.TimelineByVideo(run.KeptRecords()))
	type pair struct{ metric, human []float64 }
	byMetric := map[string]*pair{
		"onload": {}, "speedindex": {}, "firstvisualchange": {}, "lastvisualchange": {},
	}
	fmt.Printf("\n%-26s %8s %8s %8s %8s %8s\n", "video", "UPLT", "onload", "spdidx", "firstv", "lastv")
	for _, u := range campaign.Timeline {
		vals := uplt[u.ID]
		if len(vals) == 0 {
			continue
		}
		human := stats.Sample(vals).Mean()
		fmt.Printf("%-26s %7.2fs %7.2fs %7.2fs %7.2fs %7.2fs\n",
			u.ID, human, u.PLT.OnLoad.Seconds(), u.PLT.SpeedIndex.Seconds(),
			u.PLT.FirstVisualChange.Seconds(), u.PLT.LastVisualChange.Seconds())
		for name, p := range byMetric {
			p.metric = append(p.metric, u.PLT.ByName(name).Seconds())
			p.human = append(p.human, human)
		}
	}

	fmt.Println("\ncorrelation with UserPerceivedPLT (paper: onload .85, firstvisual .84, speedindex .68, lastvisual .47):")
	for _, name := range []string{"onload", "firstvisualchange", "speedindex", "lastvisualchange"} {
		p := byMetric[name]
		r, err := stats.Pearson(p.metric, p.human)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s r = %.2f\n", name, r)
	}
}
