// Quickstart: capture a page-load video the way webpeg does and compute
// the four PLT metrics the paper evaluates (§5.2). Everything is
// deterministic given the seed — rerunning prints identical numbers.
package main

import (
	"fmt"
	"log"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)

	// A synthetic corpus stands in for the paper's Alexa sample; site 0
	// is an ad-supported page with a hero image, CSS, scripts, and a
	// script-injected ad stack.
	pages := eyeorg.GenerateCorpus(2016, 3, 1.0)
	page := pages[0]
	fmt.Printf("site: %s (%d objects, %.0f KB)\n",
		page.Host, len(page.Objects), float64(page.TotalBytes())/1000)

	// Capture like webpeg: a primer load to warm DNS, five measured
	// loads, keep the one with the median onload, record video at 10 fps
	// until 5s past onload.
	cap, err := eyeorg.CaptureSite(page, eyeorg.CaptureConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trials: %d loads, onloads %v (selected #%d)\n",
		len(cap.OnLoads), cap.OnLoads, cap.MedianIndex+1)

	plt := eyeorg.ComputePLT(cap.Video, cap.Selected.OnLoad)
	fmt.Printf("video:  %.1fs at %d fps (%d frames, ~%d KB as webm)\n",
		cap.Video.Duration().Seconds(), cap.Video.FPS,
		len(cap.Video.Frames), cap.Video.WebmBytes()/1000)
	fmt.Println("metrics for the selected load:")
	fmt.Printf("  OnLoad            %8.2fs\n", plt.OnLoad.Seconds())
	fmt.Printf("  SpeedIndex        %8.2fs\n", plt.SpeedIndex.Seconds())
	fmt.Printf("  FirstVisualChange %8.2fs\n", plt.FirstVisualChange.Seconds())
	fmt.Printf("  LastVisualChange  %8.2fs\n", plt.LastVisualChange.Seconds())

	// The HAR records every request of the selected load.
	fmt.Printf("HAR:    %d entries, %d bytes transferred\n",
		len(cap.Selected.HAR.Entries), cap.Selected.HAR.TotalBytes())
}
