// adblockers reproduces a miniature §5.4: for each ad-supported site,
// capture the original load and the load with one of the three ad
// blockers installed, show the pairs to a simulated crowd, and compare
// the blockers by how often participants clearly prefer the blocked
// version (score >= 0.8). The paper's finding: Ghostery is the clear
// favourite; AdBlock and uBlock trail.
package main

import (
	"fmt"
	"log"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)

	const sites = 8
	// All three blockers are judged on the same sites, like the paper's
	// fixed 100-site ad corpus.
	pages := eyeorg.GenerateAdCorpus(100, sites)
	blockers := []*eyeorg.Blocker{eyeorg.AdBlock(), eyeorg.Ghostery(), eyeorg.UBlock()}
	fmt.Printf("%-10s %14s %14s %13s\n", "blocker", "sites scored", "mean score", "strong wins")
	for _, blocker := range blockers {
		cfg := eyeorg.CaptureConfig{Seed: 100, Loads: 3}
		cfgBlocked := cfg
		cfgBlocked.Blocker = blocker
		campaign, err := eyeorg.BuildABCampaign("ads-vs-"+blocker.Name, pages, cfg, cfgBlocked)
		if err != nil {
			log.Fatal(err)
		}
		run, err := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, 90)
		if err != nil {
			log.Fatal(err)
		}
		votes := eyeorg.ABByVideo(run.KeptRecords())
		var sum float64
		scored, strong := 0, 0
		for _, v := range votes {
			if score, ok := v.Score(); ok {
				sum += score
				scored++
				if score >= 0.8 {
					strong++
				}
			}
		}
		mean := 0.0
		if scored > 0 {
			mean = sum / float64(scored)
		}
		fmt.Printf("%-10s %14d %14.2f %10d/%d\n", blocker.Name, scored, mean, strong, scored)
	}
	fmt.Println("\n(score: 0 = original with ads felt faster, 1 = ad-blocked version felt faster)")
}
