// h1vsh2 reproduces a miniature §5.3: capture the same sites over
// HTTP/1.1 and HTTP/2, splice each pair side by side, show them to a
// simulated crowd, and score which protocol "feels" faster per site
// (0 = HTTP/1.1 faster, 1 = HTTP/2 faster; "no difference" excluded).
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)

	const sites = 10
	pages := eyeorg.GenerateCorpus(11, sites, 0.65)
	cfgH1 := eyeorg.CaptureConfig{Seed: 11, Loads: 3, Protocol: eyeorg.HTTP1}
	cfgH2 := eyeorg.CaptureConfig{Seed: 11, Loads: 3, Protocol: eyeorg.HTTP2}
	campaign, err := eyeorg.BuildABCampaign("h1-vs-h2", pages, cfgH1, cfgH2)
	if err != nil {
		log.Fatal(err)
	}
	run, err := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, 150)
	if err != nil {
		log.Fatal(err)
	}

	votes := eyeorg.ABByVideo(run.KeptRecords())
	var scores []float64
	h2Wins, h1Wins := 0, 0
	fmt.Printf("%-24s %6s %6s %7s %6s   onload H1 -> H2\n", "pair", "H1", "H2", "nodiff", "score")
	for i, u := range campaign.AB {
		v, ok := votes[u.ID]
		if !ok {
			continue
		}
		score, decisive := v.Score()
		label := "-"
		if decisive {
			label = fmt.Sprintf("%.2f", score)
			scores = append(scores, score)
			if score >= 0.8 {
				h2Wins++
			}
			if score <= 0.2 {
				h1Wins++
			}
		}
		fmt.Printf("%-24s %6d %6d %7d %6s   %.2fs -> %.2fs\n",
			fmt.Sprintf("site-%02d", i), v.A, v.B, v.NoDiff, label,
			u.PLTA.OnLoad.Seconds(), u.PLTB.OnLoad.Seconds())
	}

	fmt.Printf("\nHTTP/2 clearly faster (score >= 0.8): %d/%d sites; HTTP/1.1 clearly faster: %d/%d\n",
		h2Wins, len(scores), h1Wins, len(scores))
	fmt.Println("(the paper found 70% of its 100 sites clearly favoured HTTP/2, 12% HTTP/1.1)")
	fmt.Println()
	if err := eyeorg.CDFPlot(os.Stdout, "per-site score CDF", "score (1 = H2 faster)",
		[]eyeorg.Series{{Name: "all sites", Values: scores}}, 60, 10); err != nil {
		log.Fatal(err)
	}
}
