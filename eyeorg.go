// Package eyeorg is the public API of this reproduction of "EYEORG: A
// Platform For Crowdsourcing Web Quality Of Experience Measurements"
// (Varvello et al., CoNEXT 2016).
//
// The package ties the pipeline together end to end:
//
//	corpus := eyeorg.GenerateCorpus(2016, 100, 0.65)     // synthetic sites
//	cap, _ := eyeorg.Capture(corpus[0], eyeorg.CaptureConfig{Seed: 1})
//	plt := eyeorg.ComputePLT(cap.Video, cap.Selected.OnLoad)
//
//	campaign, _ := eyeorg.BuildTimelineCampaign("demo", corpus[:20],
//	    eyeorg.CaptureConfig{Seed: 1})
//	run, _ := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, 100)
//	uplt := eyeorg.WisdomOfCrowd(eyeorg.TimelineByVideo(run.KeptRecords()))
//
// For the paper's full evaluation, NewExperimentSuite exposes one method
// per table and figure of the evaluation (Table1, Figure1, Figure4a …
// Figure9), plus the §6 extension studies.
package eyeorg

import (
	"io"
	"net/http"
	"time"

	"github.com/eyeorg/eyeorg/internal/adblock"
	"github.com/eyeorg/eyeorg/internal/cluster"
	"github.com/eyeorg/eyeorg/internal/core"
	"github.com/eyeorg/eyeorg/internal/crowd"
	"github.com/eyeorg/eyeorg/internal/experiments"
	"github.com/eyeorg/eyeorg/internal/filtering"
	"github.com/eyeorg/eyeorg/internal/httpsim"
	"github.com/eyeorg/eyeorg/internal/metrics"
	"github.com/eyeorg/eyeorg/internal/netem"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/recruit"
	"github.com/eyeorg/eyeorg/internal/sitegen"
	"github.com/eyeorg/eyeorg/internal/telemetry"
	"github.com/eyeorg/eyeorg/internal/video"
	"github.com/eyeorg/eyeorg/internal/viz"
	"github.com/eyeorg/eyeorg/internal/webpage"
	"github.com/eyeorg/eyeorg/internal/webpeg"
)

// --- page corpus ---

// Page models one website's structure (objects, layout, blocking
// semantics).
type Page = webpage.Page

// GenerateCorpus synthesises n sites with the given ad-supported share;
// deterministic per seed. It stands in for the paper's Alexa sample.
func GenerateCorpus(seed int64, n int, adShare float64) []*Page {
	return sitegen.Generate(sitegen.Config{Seed: seed, Sites: n, AdShare: adShare, ComplexityScale: 1})
}

// GenerateAdCorpus synthesises n sites that all display ads (the §5.4
// workload).
func GenerateAdCorpus(seed int64, n int) []*Page {
	return sitegen.GenerateAdCorpus(seed, n)
}

// --- capture (webpeg) ---

// CaptureConfig configures webpeg video capture. Its Workers field
// bounds corpus- and campaign-level capture concurrency (0 = NumCPU);
// every worker count produces identical output for the same Seed.
type CaptureConfig = webpeg.Config

// Capture is one site's capture output: selected (median-onload) load and
// its video.
type Capture = webpeg.Capture

// CaptureSite records one page under cfg: a primer load, cfg.Loads trials,
// median-onload selection, and video rendering.
func CaptureSite(page *Page, cfg CaptureConfig) (*Capture, error) {
	return webpeg.CaptureSite(page, cfg)
}

// Capture is a short alias of CaptureSite.
func Captures(pages []*Page, cfg CaptureConfig) ([]*Capture, error) {
	return webpeg.CaptureCorpus(pages, cfg)
}

// Protocols selectable for capture.
const (
	HTTP1 = httpsim.HTTP1
	HTTP2 = httpsim.HTTP2
)

// Network profiles for capture (Chrome-devtools-style emulation).
var (
	ProfileLab    = netem.Lab
	ProfileCable  = netem.Cable
	ProfileDSL    = netem.DSL
	ProfileLTE    = netem.LTE
	Profile3G     = netem.ThreeG
	ProfileByName = netem.ProfileByName
)

// --- metrics ---

// PLT bundles OnLoad, SpeedIndex, FirstVisualChange and LastVisualChange.
type PLT = metrics.PLT

// Video is a captured page-load video.
type Video = video.Video

// ComputePLT derives the paper's four metrics from a captured video.
func ComputePLT(v *Video, onload time.Duration) PLT {
	return metrics.Compute(v, onload)
}

// EncodeVideo and DecodeVideo implement the platform's video payload
// format.
var (
	EncodeVideo = video.Encode
	DecodeVideo = video.Decode
)

// --- ad blockers ---

// Blocker is an ad-blocking extension profile.
type Blocker = adblock.Blocker

// The three blockers the paper compares.
var (
	AdBlock      = adblock.AdBlock
	Ghostery     = adblock.Ghostery
	UBlock       = adblock.UBlock
	BlockerNamed = adblock.ByName
)

// --- campaigns ---

// Campaign is a built experiment (timeline or A/B).
type Campaign = core.Campaign

// RunResult is a completed campaign with filtering applied.
type RunResult = core.RunResult

// CampaignStats is a Table-1 row.
type CampaignStats = core.CampaignStats

// Recruitment services.
var (
	CrowdFlower    = recruit.CrowdFlower
	Microworkers   = recruit.Microworkers
	TrustedInvites = recruit.TrustedInvites
)

// BuildTimelineCampaign captures pages and assembles a timeline campaign.
func BuildTimelineCampaign(name string, pages []*Page, cfg CaptureConfig) (*Campaign, error) {
	return core.BuildTimelineCampaign(name, pages, cfg)
}

// BuildABCampaign captures pages under two configurations and assembles an
// A/B campaign (variant A vs variant B).
func BuildABCampaign(name string, pages []*Page, cfgA, cfgB CaptureConfig) (*Campaign, error) {
	return core.BuildABCampaign(name, pages, cfgA, cfgB)
}

// RunCampaign recruits n participants and collects their responses.
// Sessions run concurrently on NumCPU workers; the result is identical
// to a serial run for the same campaign seed.
func RunCampaign(c *Campaign, svc *recruit.Service, n int) (*RunResult, error) {
	return core.RunCampaign(c, svc, n, 0)
}

// RunCampaignWorkers is RunCampaign with an explicit bound on session
// concurrency (0 = NumCPU; 1 = serial). Any worker count produces the
// same RunResult for the same seed — the determinism contract of
// internal/parallel.
func RunCampaignWorkers(c *Campaign, svc *recruit.Service, n, workers int) (*RunResult, error) {
	return core.RunCampaignWorkers(c, svc, n, 0, workers)
}

// --- filtering & analysis ---

// SessionRecord is one participant's full session.
type SessionRecord = filtering.SessionRecord

// TimelineByVideo groups kept timeline answers (seconds) per video.
var TimelineByVideo = filtering.TimelineByVideo

// WisdomOfCrowd applies the 25th–75th percentile filter per video.
var WisdomOfCrowd = filtering.WisdomOfCrowd

// ABByVideo tallies kept A/B votes per video.
var ABByVideo = filtering.ABByVideo

// Participant is a simulated respondent.
type Participant = crowd.Participant

// --- experiments ---

// ExperimentConfig scales the paper reproduction.
type ExperimentConfig = experiments.Config

// ExperimentSuite reproduces every table and figure of the paper, one
// lazily-evaluated method per artefact.
type ExperimentSuite = experiments.Suite

// PaperScale returns the paper's sample sizes (100 sites, 1000
// participants); QuickScale returns a fast configuration with the same
// shapes.
var (
	PaperScale = experiments.PaperConfig
	QuickScale = experiments.QuickConfig
)

// NewExperimentSuite builds a (lazily evaluated) experiment suite.
func NewExperimentSuite(cfg ExperimentConfig) *ExperimentSuite {
	return experiments.NewSuite(cfg)
}

// RenderAllExperiments reproduces every artefact in paper order to w.
func RenderAllExperiments(s *ExperimentSuite, w io.Writer) error {
	return s.RenderAll(w)
}

// RenderAllExperimentsParallel evaluates independent artefacts
// concurrently (workers bounds the pool; 0 = NumCPU) while writing
// output in paper order.
func RenderAllExperimentsParallel(s *ExperimentSuite, w io.Writer, workers int) error {
	return s.RenderAllParallel(w, workers)
}

// --- platform service ---

// PlatformServer is the Eyeorg web service: sharded in-memory indexes
// over an optional durable event journal (internal/store).
type PlatformServer = platform.Server

// PlatformOptions configures the platform's storage and operations
// subsystems: DataDir enables the write-ahead journal + snapshots
// (crash recovery rebuilds byte-identical /results), Shards sets the
// per-index shard count, Fsync makes every mutation durable before its
// ack, and GroupCommit coalesces concurrent mutations into one journal
// flush + fsync per window (tuned by GroupMaxBatch/GroupMaxDelay) —
// the durable configuration for heavy ingest. MaxInFlight, WorkerRate
// and MaxBodyBytes put the API behind admission control (429 +
// Retry-After / 413 under pressure; binary event batches charge the
// worker's bucket per decoded record), MaxBatchRecords caps one EYB1
// binary batch on the events endpoint (see internal/wire), and
// DisableTelemetry turns off the GET /metrics registry the server
// otherwise maintains. Adaptive enables sequential campaigns
// (internal/adaptive): per-video confidence intervals steer each new
// assignment at the under-sampled videos and close the campaign — new
// joins get 409 — once every interval shrinks to CIHalfWidth.
type PlatformOptions = platform.Options

// TelemetryRegistry collects the platform's runtime metrics — lock-free
// counters, gauges and latency histograms — and renders them in the
// Prometheus text exposition format. PlatformServer.Metrics returns the
// server's registry so embedders can add instruments of their own or
// mount the exposition elsewhere.
type TelemetryRegistry = telemetry.Registry

// NewPlatformServer opens a platform server with the given storage
// options. Close it to flush the journal when persistence is enabled;
// StartDrain before closing to refuse new sessions while participants
// mid-assignment finish (see cmd/eyeorg-server for the full sequence).
func NewPlatformServer(opts PlatformOptions) (*PlatformServer, error) {
	return platform.Open(opts)
}

// NewPlatformHandler returns an in-memory Eyeorg web service handler.
func NewPlatformHandler() http.Handler {
	return platform.NewServer().Handler()
}

// --- cluster ---

// Cluster partitions campaigns across several platform nodes by
// consistent hashing, replicates each node's journal into an in-memory
// follower by WAL window shipping (acked ⇒ shipped ⇒ applied on the
// follower), and fails campaigns over to the follower's host when a
// node dies. See internal/cluster and docs/ARCHITECTURE.md.
type Cluster = cluster.Cluster

// ClusterConfig describes an in-process cluster (node IDs, data
// directory, durability mode, router mode).
type ClusterConfig = cluster.Config

// ClusterRouter is the thin entry point in front of a cluster: it
// resolves every request to the campaign's owning node and proxies or
// redirects.
type ClusterRouter = cluster.Router

// ClusterRing is the consistent-hash ring mapping campaign IDs to
// nodes; membership changes move only ~1/N of campaigns.
type ClusterRing = cluster.Ring

// ClusterNode is one cluster member: a platform server wrapped in the
// ownership middleware that fences handed-off campaigns with 307s.
type ClusterNode = cluster.Node

// NewCluster brings up an in-process cluster: one durable platform
// node per ID under cfg.Dir, WAL shipping into followers, and a router
// in front. Drive it through Cluster.Handler().
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewClusterRing builds a consistent-hash ring over node IDs
// (vnodes ≤ 0 selects the default virtual-node count).
func NewClusterRing(nodes []string, vnodes int) *ClusterRing { return cluster.NewRing(nodes, vnodes) }

// NewRemoteClusterRouter builds a router over out-of-process nodes by
// their advertised base URLs — the standalone eyeorg-router binary.
func NewRemoteClusterRouter(mode string, ring *ClusterRing, members map[string]string) (*ClusterRouter, error) {
	return cluster.NewRemoteRouter(mode, ring, members)
}

// NewStandaloneClusterNode wraps a platform server in the cluster
// ownership middleware for multi-process deployments (eyeorg-server
// -node-id): fenced campaigns 307 to the peer the directory resolves.
func NewStandaloneClusterNode(id, base string, srv *PlatformServer, directory func(nodeID string) (string, bool)) *ClusterNode {
	return cluster.NewStandaloneNode(id, base, srv, directory)
}

// --- live quality analytics ---

// AnalyticsResponse is the live quality-analytics payload of
// GET /api/v1/campaigns/{id}/analytics: per-participant §4.3 filter
// verdicts (final for completed sessions, provisional for in-flight
// ones), kept/dropped counts per rule, and the current wisdom-of-the-
// crowd percentile band per video. The platform maintains it
// incrementally on every mutation (internal/quality); its verdicts are
// contractually equal to running the offline batch filter on the same
// sessions.
type AnalyticsResponse = platform.AnalyticsResponse

// AnalyticsSummary is the per-rule kept/dropped histogram of the live
// analytics.
type AnalyticsSummary = platform.AnalyticsSummary

// ParticipantVerdict is one session's current standing against the
// §4.3 filters.
type ParticipantVerdict = platform.ParticipantVerdict

// VideoAnalytics is one video's live aggregate: the timeline percentile
// band or the A/B vote tallies over kept sessions.
type VideoAnalytics = platform.VideoAnalytics

// StoppingAnalytics is the adaptive stopper's campaign-level view in
// the analytics payload: per-video confidence intervals, resolution
// state, and whether the campaign has closed to new joins. Present
// only when the server runs with PlatformOptions.Adaptive.
type StoppingAnalytics = platform.StoppingAnalytics

// VideoStopping is one video's adaptive stopping state.
type VideoStopping = platform.VideoStopping

// --- visualization ---

// Series is a named value set for text plots.
type Series = viz.Series

// CDFPlot renders empirical CDFs as text (the paper's dominant figure
// style).
var CDFPlot = viz.CDFPlot

// ResponseTimeline renders the Figure 1 visualization.
var ResponseTimeline = viz.ResponseTimeline
