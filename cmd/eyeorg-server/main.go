// Command eyeorg-server runs the Eyeorg web service (the HTTP JSON API of
// https://eyeorg.net): campaign management, session assignment, video
// serving, engagement ingestion, response collection, filtered results,
// and live quality analytics (GET /api/v1/campaigns/{id}/analytics —
// incremental §4.3 filter verdicts while the campaign runs).
//
// Usage:
//
//	eyeorg-server -addr :8080
//	eyeorg-server -addr :8080 -data-dir ./eyeorg-data -shards 64
//
// With -data-dir every mutation is journaled to a segmented write-ahead
// log (wal-*.seg) with periodic snapshots (snap-*.snap); restarting the
// server over the same directory recovers the exact pre-crash state,
// including byte-identical /results. -shards sets the lock sharding of
// the in-memory indexes (rounded up to a power of two). -fsync makes
// every mutation durable before its response; add -group-commit to
// amortize that into one fsync per flush window instead of one per
// record — the durable-ingest configuration for heavy crowds.
//
// Seed a campaign and a video, then take a test:
//
//	curl -X POST localhost:8080/api/v1/campaigns \
//	     -d '{"name":"demo","kind":"timeline"}'
//	webpeg -sites 1 && curl -X POST --data-binary @captures/site-000.eyv \
//	     localhost:8080/api/v1/campaigns/c1/videos
//	curl -X POST localhost:8080/api/v1/sessions \
//	     -d '{"campaign":"c1","worker":{"id":"w1"},"captcha":"tok"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeorg-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "journal + snapshot directory (default in-memory)")
	shards := flag.Int("shards", 0, "index shard count, rounded to a power of two (0 = default)")
	fsync := flag.Bool("fsync", false, "fsync the journal before acking mutations")
	groupCommit := flag.Bool("group-commit", false, "coalesce concurrent mutations into one journal flush (and fsync) per window")
	groupMaxBatch := flag.Int("group-max-batch", 0, "with -group-max-delay: close a held window early at this many pending records (0 = default)")
	groupMaxDelay := flag.Duration("group-max-delay", 0, "hold a group-commit window open this long for more records (0 = flush immediately)")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between snapshots (0 = default, <0 = never)")
	flag.Parse()

	platform, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{
		DataDir:       *dataDir,
		Shards:        *shards,
		Fsync:         *fsync,
		GroupCommit:   *groupCommit,
		GroupMaxBatch: *groupMaxBatch,
		GroupMaxDelay: *groupMaxDelay,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		log.Fatalf("opening platform store: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           platform.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *dataDir != "" {
		log.Printf("persisting to %s", *dataDir)
	}
	log.Printf("serving the Eyeorg API on %s", *addr)

	// Serve until the listener fails or a signal arrives, then drain
	// in-flight requests and flush the journal: the platform's Close is
	// what guarantees the final appends reach disk.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		platform.Close()
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
	}
	if err := platform.Close(); err != nil {
		log.Fatalf("closing platform store: %v", err)
	}
}
