// Command eyeorg-server runs the Eyeorg web service (the HTTP JSON API of
// https://eyeorg.net): campaign management, session assignment, video
// serving, engagement ingestion, response collection, and filtered
// results.
//
// Usage:
//
//	eyeorg-server -addr :8080
//
// Seed a campaign and a video, then take a test:
//
//	curl -X POST localhost:8080/api/v1/campaigns \
//	     -d '{"name":"demo","kind":"timeline"}'
//	webpeg -sites 1 && curl -X POST --data-binary @captures/site-000.eyv \
//	     localhost:8080/api/v1/campaigns/c1/videos
//	curl -X POST localhost:8080/api/v1/sessions \
//	     -d '{"campaign":"c1","worker":{"id":"w1"},"captcha":"tok"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeorg-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           eyeorg.NewPlatformHandler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving the Eyeorg API on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
