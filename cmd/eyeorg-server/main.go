// Command eyeorg-server runs the Eyeorg web service (the HTTP JSON API of
// https://eyeorg.net): campaign management, session assignment, video
// serving, engagement ingestion, response collection, filtered results,
// live quality analytics (GET /api/v1/campaigns/{id}/analytics), and
// operational telemetry (GET /metrics, Prometheus text format).
//
// Usage:
//
//	eyeorg-server -addr :8080
//	eyeorg-server -addr :8080 -data-dir ./eyeorg-data -shards 64
//	eyeorg-server -addr :8080 -max-inflight 256 -worker-rate 20
//	eyeorg-server -addr :8080 -trace-sample 0.01 -trace-slow 50ms -debug-addr :8081
//
// With -data-dir every mutation is journaled to a segmented write-ahead
// log (wal-*.seg) with periodic snapshots (snap-*.snap); restarting the
// server over the same directory recovers the exact pre-crash state,
// including byte-identical /results. -shards sets the lock sharding of
// the in-memory indexes (rounded up to a power of two). -fsync makes
// every mutation durable before its response; add -group-commit to
// amortize that into one fsync per flush window instead of one per
// record — the durable-ingest configuration for heavy crowds.
//
// Admission control protects the service from crowd spikes:
// -max-inflight caps concurrently served requests (excess gets 429 +
// Retry-After), -worker-rate token-buckets each session's request rate
// on the session-scoped endpoints, and -max-body caps JSON ingest
// bodies (oversize gets 413). On SIGINT/SIGTERM the server drains:
// new sessions are refused with 503 while participants mid-assignment
// keep submitting, until no session is in flight (or -drain-timeout
// passes); then the listener shuts down and the journal — including a
// pending group-commit window — is flushed by Close.
//
// -adaptive turns campaigns sequential (VidPlat-style): the platform
// keeps a 95% confidence interval per video over kept sessions, steers
// each new assignment at the under-sampled / widest-interval videos,
// and closes the campaign — new joins get 409 — once every interval is
// at most -ci-halfwidth (seconds for timeline campaigns, preference
// score for A/B). -adaptive-seed fixes the small-sample bootstrap so
// stopping decisions are reproducible; /analytics gains a "stopping"
// block reporting per-video intervals and resolution.
//
// Video payloads live in a content-addressed blob store (deduplicated
// by SHA-256, served with strong ETags, 304s and Range requests). With
// -data-dir they persist as blob files; -video-tier picks how they are
// served (file: blob files fronted by an LRU byte cache sized by
// -video-cache; mem: additionally resident in RAM), and -video-chunk
// sets the ingest chunk size and cache admission bound.
//
// Observability: -trace-sample and/or -trace-slow enable end-to-end
// ingest tracing — every request is stamped through the explicit stage
// pipeline (receive → admission → decode → lock wait → journal append →
// apply → flush → fsync → ack → write), sampled traces are retained in
// a ring, requests slower than -trace-slow are always kept and logged,
// and per-stage latency histograms appear on /metrics. -debug-addr
// opens a second listener carrying the operational surface —
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, and
// the trace ring under GET /debug/traces (and /debug/traces/{id}).
// Retained traces name campaigns and sessions, so the trace surface
// serves only there, never on the public address; -debug-addr must
// differ from -addr.
// Logs go to stderr through log/slog; -log-format selects text (human)
// or json (machine) records.
//
// Seed a campaign and a video, then take a test:
//
//	curl -X POST localhost:8080/api/v1/campaigns \
//	     -d '{"name":"demo","kind":"timeline"}'
//	webpeg -sites 1 && curl -X POST --data-binary @captures/site-000.eyv \
//	     localhost:8080/api/v1/campaigns/c1/videos
//	curl -X POST localhost:8080/api/v1/sessions \
//	     -d '{"campaign":"c1","worker":{"id":"w1"},"captcha":"tok"}'
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/eyeorg/eyeorg"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "journal + snapshot directory (default in-memory)")
	shards := flag.Int("shards", 0, "index shard count, rounded to a power of two (0 = default)")
	fsync := flag.Bool("fsync", false, "fsync the journal before acking mutations")
	groupCommit := flag.Bool("group-commit", false, "coalesce concurrent mutations into one journal flush (and fsync) per window")
	groupMaxBatch := flag.Int("group-max-batch", 0, "with -group-max-delay: close a held window early at this many pending records (0 = default)")
	groupMaxDelay := flag.Duration("group-max-delay", 0, "hold a group-commit window open this long for more records (0 = flush immediately)")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between snapshots (0 = default, <0 = never)")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently served API requests; excess gets 429 (0 = unlimited)")
	workerRate := flag.Float64("worker-rate", 0, "per-session request rate cap in req/s on session endpoints; excess gets 429 (0 = unlimited)")
	workerBurst := flag.Int("worker-burst", 0, "per-session token-bucket burst (0 = 2x rate)")
	maxBody := flag.Int64("max-body", 0, "JSON ingest body cap in bytes; oversize gets 413 (0 = 1 MiB)")
	maxBatchRecords := flag.Int("max-batch-records", 0, "record cap per binary events batch; oversize gets 413 (0 = 4096, <0 = unlimited)")
	videoTier := flag.String("video-tier", "", "video serving tier with -data-dir: file (blob files + byte cache) or mem (also resident in RAM); default file")
	videoCache := flag.Int64("video-cache", 0, "file-tier video byte-cache capacity in bytes (0 = 64 MiB, <0 = disabled)")
	videoChunk := flag.Int("video-chunk", 0, "video blob chunk size and cache admission bound in bytes (0 = 1 MiB)")
	noTelemetry := flag.Bool("no-telemetry", false, "disable the /metrics registry and handler instrumentation")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests retained as stage-attributed traces on /debug/traces (0 = tracing off unless -trace-slow)")
	traceSlow := flag.Duration("trace-slow", 0, "always retain and log requests at least this slow (0 = off)")
	traceBuffer := flag.Int("trace-buffer", 0, "trace retention per ring, sampled and slow, in traces (0 = 256)")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/pprof, /debug/vars and /debug/traces (empty = off; must differ from -addr)")
	logFormat := flag.String("log-format", "text", "log record format: text or json")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long a drain waits for in-flight sessions to complete")
	adaptive := flag.Bool("adaptive", false, "sequential campaigns: steer assignments by per-video confidence intervals and close campaigns (409 joins) once every video resolves")
	ciHalfWidth := flag.Float64("ci-halfwidth", 0, "with -adaptive: target 95% CI half-width per video — seconds (timeline) or preference score (ab); 0 = 0.5")
	adaptiveSeed := flag.Int64("adaptive-seed", 0, "with -adaptive: seed for the deterministic small-sample bootstrap")
	nodeID := flag.String("node-id", "", "cluster member ID (e.g. a); namespaces minted entity IDs and enables the ownership middleware")
	nodeBase := flag.String("node-base", "", "with -node-id: this node's advertised base URL, the prefix of fencing-redirect Locations")
	peers := flag.String("peers", "", "with -node-id: peer nodes as id=baseURL pairs, comma-separated, for resolving handoff redirects")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eyeorg-server: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	if err := validateAddrs(*addr, *debugAddr); err != nil {
		logger.Error("invalid listen configuration", "err", err)
		os.Exit(2)
	}

	peerDir, err := parsePeers(*nodeID, *nodeBase, *peers)
	if err != nil {
		logger.Error("invalid cluster configuration", "err", err)
		os.Exit(2)
	}

	idTag := ""
	if *nodeID != "" {
		idTag = *nodeID + "."
	}
	platform, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{
		IDTag:            idTag,
		DataDir:          *dataDir,
		Shards:           *shards,
		Fsync:            *fsync,
		GroupCommit:      *groupCommit,
		GroupMaxBatch:    *groupMaxBatch,
		GroupMaxDelay:    *groupMaxDelay,
		SnapshotEvery:    *snapshotEvery,
		MaxInFlight:      *maxInflight,
		WorkerRate:       *workerRate,
		WorkerBurst:      *workerBurst,
		MaxBodyBytes:     *maxBody,
		MaxBatchRecords:  *maxBatchRecords,
		VideoTier:        *videoTier,
		VideoCacheBytes:  *videoCache,
		VideoChunkBytes:  *videoChunk,
		DisableTelemetry: *noTelemetry,
		TraceSample:      *traceSample,
		TraceSlow:        *traceSlow,
		TraceBuffer:      *traceBuffer,
		Logger:           logger,
		Adaptive:         *adaptive,
		CIHalfWidth:      *ciHalfWidth,
		AdaptiveSeed:     *adaptiveSeed,
	})
	if err != nil {
		logger.Error("opening platform store", "err", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		platform.Close()
		logger.Error("listening failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("persisting", "dir", *dataDir)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			platform.Close()
			logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		dsrv := &http.Server{Handler: newDebugHandler(platform), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := dsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener stopped", "err", err)
			}
		}()
		logger.Info("serving debug surface", "addr", dln.Addr().String())
	}
	logger.Info("serving the Eyeorg API", "addr", ln.Addr().String())

	handler := platform.Handler()
	if *nodeID != "" {
		// The ownership middleware fences handed-off campaigns with a
		// 307 naming the new owner from the peer directory.
		node := eyeorg.NewStandaloneClusterNode(*nodeID, *nodeBase, platform, func(id string) (string, bool) {
			base, ok := peerDir[id]
			return base, ok
		})
		handler = node.Handler()
		logger.Info("cluster member", "node", *nodeID, "base", *nodeBase, "peers", len(peerDir))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if err := run(platform, newHTTPServer(handler), ln, sigc, *drainTimeout); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger in the requested record format.
func newLogger(w *os.File, format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// parsePeers validates the cluster flags and parses the peer directory
// ("b=http://host-b:8081,c=http://host-c:8081"). Self resolves to the
// node's own base, so a stale fence naming this node still redirects
// somewhere sensible.
func parsePeers(nodeID, nodeBase, peers string) (map[string]string, error) {
	if nodeID == "" {
		if nodeBase != "" || peers != "" {
			return nil, fmt.Errorf("-node-base/-peers require -node-id")
		}
		return nil, nil
	}
	if strings.Contains(nodeID, ".") || strings.Contains(nodeID, "/") {
		return nil, fmt.Errorf("-node-id %q must not contain '.' or '/'", nodeID)
	}
	if nodeBase == "" {
		return nil, fmt.Errorf("-node-id requires -node-base")
	}
	dir := map[string]string{nodeID: strings.TrimSuffix(nodeBase, "/")}
	if strings.TrimSpace(peers) == "" {
		return dir, nil
	}
	for _, part := range strings.Split(peers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, base, ok := strings.Cut(part, "=")
		id, base = strings.TrimSpace(id), strings.TrimSpace(base)
		if !ok || id == "" || base == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=baseURL", part)
		}
		if _, dup := dir[id]; dup && id != nodeID {
			return nil, fmt.Errorf("-peers lists node ID %q twice", id)
		}
		dir[id] = strings.TrimSuffix(base, "/")
	}
	return dir, nil
}

// validateAddrs refuses to start with the debug surface on the public
// address: pprof and the trace ring must never be one -addr typo away
// from the open internet.
func validateAddrs(addr, debugAddr string) error {
	if debugAddr != "" && debugAddr == addr {
		return fmt.Errorf("-debug-addr %q must differ from -addr", debugAddr)
	}
	return nil
}

// newDebugHandler builds the operational surface served on -debug-addr:
// net/http/pprof, expvar, and — when tracing is enabled — the platform's
// /debug/traces routes.
func newDebugHandler(platform *eyeorg.PlatformServer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if h := platform.DebugHandler(); h != nil {
		mux.Handle("/debug/traces", h)
		mux.Handle("/debug/traces/", h)
	}
	return mux
}

// newHTTPServer wraps the platform handler with the connection
// timeouts a public service needs: slow-header, slow-read and
// slow-write clients all get bounded, and idle keep-alive connections
// are reaped. ReadTimeout is generous because a legitimate video
// upload is tens of megabytes.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// run serves until the listener fails or a signal arrives, then
// executes the drain sequence: stop admitting new sessions (503),
// keep serving participants already mid-assignment until none is in
// flight or drainTimeout passes, shut the HTTP server down (which
// finishes in-flight requests), and flush the journal — Close is what
// forces a pending group-commit window to disk. Factored out of main
// so the drain path is testable with an injected signal channel.
func run(platform *eyeorg.PlatformServer, srv *http.Server, ln net.Listener, sigc <-chan os.Signal, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		platform.Close()
		return err
	case sig := <-sigc:
		slog.Info("draining on signal", "signal", sig.String(), "sessions_in_flight", platform.SessionsInFlight())
		platform.StartDrain()
		awaitDrain(platform, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			slog.Error("shutdown failed", "err", err)
		}
	}
	return platform.Close()
}

// drainIdleGrace is how long a drain tolerates zero progress — no
// session completing, no request being served — before concluding the
// remaining sessions are abandoned and further waiting buys nothing.
const drainIdleGrace = 2 * time.Second

// awaitDrain waits for in-flight sessions to finish, bounded two ways:
// the hard drainTimeout, and a quiescence check. A crowd always
// abandons some sessions mid-assignment and those never complete, so
// "wait for zero in flight" alone would turn every restart into a full
// drainTimeout stall; instead the wait also ends once nothing has made
// progress for drainIdleGrace. Progress is read from the in-flight
// request counter, which the platform only maintains with telemetry or
// an admission cap configured (TracksRequests); without it an active
// participant would look idle and get cut off, so the quiescence
// shortcut is disabled and the drain waits out sessions or the full
// timeout.
func awaitDrain(platform *eyeorg.PlatformServer, drainTimeout time.Duration) {
	quiesce := platform.TracksRequests()
	deadline := time.Now().Add(drainTimeout)
	idleSince := time.Now()
	last := platform.SessionsInFlight()
	for {
		n := platform.SessionsInFlight()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			slog.Warn("drain timeout", "sessions_in_flight", n)
			return
		}
		if quiesce {
			if n != last || platform.RequestsInFlight() > 0 {
				last, idleSince = n, time.Now()
			} else if time.Since(idleSince) >= drainIdleGrace {
				slog.Info("drain quiesced with sessions abandoned", "sessions_in_flight", n, "idle_grace", drainIdleGrace)
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}
