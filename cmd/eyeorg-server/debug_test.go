package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/eyeorg/eyeorg"
)

func TestValidateAddrs(t *testing.T) {
	if err := validateAddrs(":8080", ":8080"); err == nil {
		t.Fatal("identical -addr and -debug-addr accepted")
	}
	if err := validateAddrs(":8080", ":8081"); err != nil {
		t.Fatalf("distinct addrs rejected: %v", err)
	}
	if err := validateAddrs(":8080", ""); err != nil {
		t.Fatalf("empty debug addr rejected: %v", err)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(os.Stderr, format); err != nil {
			t.Errorf("format %q rejected: %v", format, err)
		}
	}
	if _, err := newLogger(os.Stderr, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestDebugHandlerSurface: the -debug-addr mux serves pprof, expvar and
// (tracing on) the trace ring; with tracing off the trace routes 404
// while pprof stays up.
func TestDebugHandlerSurface(t *testing.T) {
	traced, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{TraceSample: 1, TraceSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	srv := httptest.NewServer(newDebugHandler(traced))
	defer srv.Close()
	for path, want := range map[string]int{
		"/debug/pprof/":        http.StatusOK,
		"/debug/pprof/cmdline": http.StatusOK,
		"/debug/vars":          http.StatusOK,
		"/debug/traces":        http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	plain, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	psrv := httptest.NewServer(newDebugHandler(plain))
	defer psrv.Close()
	resp, err := http.Get(psrv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tracing-off /debug/traces = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(psrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tracing-off pprof index = %d, want 200", resp.StatusCode)
	}
}

// TestTracedServerEndToEnd drives the composed main-path wiring — API
// listener with tracing flags set, debug listener beside it — and
// reads a stage-attributed trace back through the debug listener's
// /debug/traces route. The API listener itself must not serve the
// trace surface.
func TestTracedServerEndToEnd(t *testing.T) {
	srv, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{
		TraceSample: 1, TraceSeed: 11, Fsync: true, GroupCommit: true, DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()
	dbg := httptest.NewServer(newDebugHandler(srv))
	defer dbg.Close()
	if code := post(t, api.URL+"/api/v1/campaigns", []byte(`{"name":"d","kind":"timeline"}`), nil); code != http.StatusCreated {
		t.Fatalf("create campaign: %d", code)
	}
	leak, err := http.Get(api.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	leak.Body.Close()
	if leak.StatusCode != http.StatusNotFound {
		t.Fatalf("API listener serves /debug/traces: %d, want 404", leak.StatusCode)
	}
	resp, err := http.Get(dbg.URL + "/debug/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "route=create_campaign") {
		t.Fatalf("trace text missing the traced route:\n%s", body)
	}
}
