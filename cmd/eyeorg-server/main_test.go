package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/eyeorg/eyeorg"
	"github.com/eyeorg/eyeorg/internal/browsersim"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/video"
	"github.com/eyeorg/eyeorg/internal/vision"
)

func sampleVideoBytes() []byte {
	paints := []browsersim.PaintEvent{
		{T: 300 * time.Millisecond, Rect: vision.Rect{X: 0, Y: 0, W: vision.GridW, H: vision.GridH}, Value: 1},
		{T: 1200 * time.Millisecond, Rect: vision.Rect{X: 0, Y: 2, W: 30, H: 10}, Value: 2},
	}
	return video.Encode(video.Capture(paints, 3*time.Second, 10))
}

func post(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestDrainOnSIGTERM is the regression test for the drain sequence: a
// SIGTERM while a participant is mid-assignment must keep serving that
// session's requests to completion (new joins get 503), then shut down
// cleanly with the completed record flushed to the journal.
func TestDrainOnSIGTERM(t *testing.T) {
	dataDir := t.TempDir()
	srv, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{
		DataDir: dataDir, Fsync: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	sigc := make(chan os.Signal, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(srv, newHTTPServer(srv.Handler()), ln, sigc, 30*time.Second) }()

	// Seed a campaign with one video and join a session.
	var created platform.CreateCampaignResponse
	if code := post(t, base+"/api/v1/campaigns", []byte(`{"name":"drain","kind":"timeline"}`), &created); code != http.StatusCreated {
		t.Fatalf("create campaign: %d", code)
	}
	if code := post(t, base+"/api/v1/campaigns/"+created.ID+"/videos", sampleVideoBytes(), nil); code != http.StatusCreated {
		t.Fatalf("add video: %d", code)
	}
	joinBody := fmt.Sprintf(`{"campaign":%q,"worker":{"id":"w1"},"captcha":"tok"}`, created.ID)
	var jr platform.JoinResponse
	if code := post(t, base+"/api/v1/sessions", []byte(joinBody), &jr); code != http.StatusCreated {
		t.Fatalf("join: %d", code)
	}

	// SIGTERM mid-assignment, then wait for drain mode to engage.
	sigc <- syscall.SIGTERM
	for deadline := time.Now().Add(5 * time.Second); !srv.Draining(); {
		if time.Now().After(deadline) {
			t.Fatalf("server never entered drain mode")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New sessions are refused...
	if code := post(t, base+"/api/v1/sessions", []byte(joinBody), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("join during drain = %d, want 503", code)
	}
	// ...but the in-flight session finishes its whole assignment.
	for _, tt := range jr.Tests {
		events := fmt.Sprintf(`{"video_id":%q,"load_ms":100,"time_on_video_ms":6000,"plays":1,"watched_fraction":1}`, tt.VideoID)
		if code := post(t, base+"/api/v1/sessions/"+jr.Session+"/events", []byte(events), nil); code != http.StatusAccepted {
			t.Fatalf("events during drain = %d, want 202", code)
		}
		resp := fmt.Sprintf(`{"test_id":%q,"submitted_ms":1400,"kept_original":true}`, tt.TestID)
		if code := post(t, base+"/api/v1/sessions/"+jr.Session+"/responses", []byte(resp), nil); code != http.StatusAccepted {
			t.Fatalf("response during drain = %d, want 202", code)
		}
	}

	// The drain completes once no session is in flight; run() exits
	// cleanly with the journal (group-commit window included) flushed.
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after the in-flight session completed")
	}

	// Recovery proves the drained writes reached the journal.
	re, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{DataDir: dataDir})
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer re.Close()
	if n := re.SessionsInFlight(); n != 0 {
		t.Fatalf("recovered state has %d sessions in flight, want 0 (completion lost)", n)
	}
}

// TestDrainAbandonedSession: a session whose participant walked away
// never completes, so the drain must detect quiescence and exit after
// the idle grace instead of stalling the full -drain-timeout on every
// restart.
func TestDrainAbandonedSession(t *testing.T) {
	srv, err := eyeorg.NewPlatformServer(eyeorg.PlatformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	sigc := make(chan os.Signal, 1)
	runErr := make(chan error, 1)
	const drainTimeout = 60 * time.Second // quiescence must beat this by far
	go func() { runErr <- run(srv, newHTTPServer(srv.Handler()), ln, sigc, drainTimeout) }()

	var created platform.CreateCampaignResponse
	if code := post(t, base+"/api/v1/campaigns", []byte(`{"name":"gone","kind":"timeline"}`), &created); code != http.StatusCreated {
		t.Fatalf("create campaign: %d", code)
	}
	if code := post(t, base+"/api/v1/campaigns/"+created.ID+"/videos", sampleVideoBytes(), nil); code != http.StatusCreated {
		t.Fatalf("add video: %d", code)
	}
	joinBody := fmt.Sprintf(`{"campaign":%q,"worker":{"id":"ghost"},"captcha":"tok"}`, created.ID)
	if code := post(t, base+"/api/v1/sessions", []byte(joinBody), nil); code != http.StatusCreated {
		t.Fatalf("join: %d", code)
	}

	start := time.Now()
	sigc <- syscall.SIGTERM
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(drainTimeout / 2):
		t.Fatalf("drain still waiting on an abandoned session after %s", drainTimeout/2)
	}
	if waited := time.Since(start); waited > 15*time.Second {
		t.Fatalf("abandoned-session drain took %s, want roughly the idle grace", waited)
	}
}
