// Command eyeorg-router fronts a multi-node Eyeorg cluster: it maps
// every API request to the node owning the targeted campaign and
// either proxies it there or answers a redirect for the client to
// follow.
//
// Usage:
//
//	eyeorg-router -addr :8080 -nodes a=http://10.0.0.1:8081,b=http://10.0.0.2:8081
//	eyeorg-router -addr :8080 -mode redirect -nodes a=http://node-a:8081,b=http://node-b:8081
//
// Campaign ownership is decided by a consistent-hash ring with virtual
// nodes over campaign IDs (-vnodes points per node), so the router and
// every node derive the identical partition from the member list alone
// — no coordination service. Campaign creates are always proxied: the
// router mints the campaign ID itself (under its own "cr." tag) so the
// owner is known before the create lands anywhere. Everything else is
// proxied (-mode proxy, the default) or redirected with 307 (-mode
// redirect), which preserves method and body, so clients replay POSTs
// verbatim at the owning node.
//
// Each node behind the router is an eyeorg-server started with
// -node-id/-node-base/-peers matching this member list; a node answers
// 307 for campaigns it has handed off, and in proxy mode the router
// follows those fences server-side and pins the new owner. The
// router's own counters — requests per node, fence hops followed,
// failovers, unroutable requests — are served on GET /metrics.
//
// The router holds no durable state: restarting it loses only warm
// routing tables, which rebuild from the ring and node responses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/eyeorg/eyeorg"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mode := flag.String("mode", "proxy", "dispatch mode: proxy (forward server-side, follow fences) or redirect (307 to the owning node)")
	nodes := flag.String("nodes", "", "cluster members as id=baseURL pairs, comma-separated (required)")
	vnodes := flag.Int("vnodes", 0, "virtual-node points per member on the hash ring (0 = default)")
	logFormat := flag.String("log-format", "text", "log record format: text or json")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eyeorg-router: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	members, err := parseMembers(*nodes)
	if err != nil {
		logger.Error("invalid -nodes", "err", err)
		os.Exit(2)
	}
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	router, err := eyeorg.NewRemoteClusterRouter(*mode, eyeorg.NewClusterRing(ids, *vnodes), members)
	if err != nil {
		logger.Error("building router", "err", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listening failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	logger.Info("routing the Eyeorg API", "addr", ln.Addr().String(), "mode", *mode, "nodes", ids)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("router exited", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("shutting down on signal", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown failed", "err", err)
		}
	}
}

// parseMembers parses "a=http://host1,b=http://host2" into a member
// map, rejecting duplicates and empty pieces.
func parseMembers(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("at least one id=baseURL member is required")
	}
	members := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, base, ok := strings.Cut(part, "=")
		id, base = strings.TrimSpace(id), strings.TrimSpace(base)
		if !ok || id == "" || base == "" {
			return nil, fmt.Errorf("member %q is not id=baseURL", part)
		}
		if _, dup := members[id]; dup {
			return nil, fmt.Errorf("duplicate node ID %q", id)
		}
		members[id] = base
	}
	if len(members) == 0 {
		return nil, errors.New("at least one id=baseURL member is required")
	}
	return members, nil
}

// newLogger builds the process logger in the requested record format.
func newLogger(w *os.File, format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
