// End-to-end durability-mode equivalence: the same seeded persona
// schedule, driven through the real generator against servers in every
// {fsync on/off} × {group commit on/off} configuration, must produce
// byte-identical /results and /analytics — durability tuning may move
// when bytes reach disk, never what the platform computes. Each server
// is also restarted over its data directory to pin recovery into the
// same contract.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/eyeorg/eyeorg/internal/browsersim"
	"github.com/eyeorg/eyeorg/internal/crowd"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/rng"
	"github.com/eyeorg/eyeorg/internal/video"
	"github.com/eyeorg/eyeorg/internal/vision"
)

// syntheticPayloads builds n valid EYV1 videos with distinct paint
// schedules — the webpeg capture pipeline is not under test here.
func syntheticPayloads(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		paints := []browsersim.PaintEvent{
			{T: time.Duration(200+i*80) * time.Millisecond,
				Rect: vision.Rect{X: 0, Y: 0, W: vision.GridW, H: vision.GridH}, Value: 1},
			{T: time.Duration(900+i*150) * time.Millisecond,
				Rect: vision.Rect{X: 0, Y: 2, W: 30, H: 10}, Value: 2},
		}
		out = append(out, video.Encode(video.Capture(paints, 3*time.Second, 10)))
	}
	return out
}

func rawBody(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// driveSchedule runs the deterministic schedule against one server
// configuration — with binary, flushing each session's events as one
// EYB1 batch — and returns the final /results and /analytics bytes,
// verified stable across a restart.
func driveSchedule(t *testing.T, opts platform.Options, binary bool, payloads [][]byte, sessions int) (results, analytics []byte) {
	t.Helper()
	srv, err := platform.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := newHTTPClient(4)
	campaign, _, err := seedCampaign(client, ts.URL, "timeline", payloads)
	if err != nil {
		t.Fatal(err)
	}
	g := &generator{
		client:    client,
		target:    ts.URL,
		campaigns: []string{campaign},
		kind:      "timeline",
		binary:    binary,
		deadline:  time.Now().Add(time.Hour),
	}
	// The schedule: a fresh seeded population answering sequentially, so
	// every configuration sees the identical request stream and the
	// float-order-sensitive aggregates cannot diverge.
	pop := crowd.NewPopulation(rng.New(99), crowd.PopulationConfig{Class: crowd.Paid, N: sessions})
	st := newWorkerStats()
	for i, p := range pop {
		if err := g.session(st, campaign, fmt.Sprintf("eq-w0-s%d", i+1), p); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	resultsURL := ts.URL + "/api/v1/campaigns/" + campaign + "/results"
	analyticsURL := ts.URL + "/api/v1/campaigns/" + campaign + "/analytics"
	results = rawBody(t, client, resultsURL)
	analytics = rawBody(t, client, analyticsURL)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery over the same directory must serve the same bytes.
	srv2, err := platform.Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resultsURL2 := ts2.URL + "/api/v1/campaigns/" + campaign + "/results"
	analyticsURL2 := ts2.URL + "/api/v1/campaigns/" + campaign + "/analytics"
	if got := rawBody(t, client, resultsURL2); !bytes.Equal(got, results) {
		t.Error("restart changed /results bytes")
	}
	if got := rawBody(t, client, analyticsURL2); !bytes.Equal(got, analytics) {
		t.Error("restart changed /analytics bytes")
	}
	return results, analytics
}

func TestDurabilityModeEquivalence(t *testing.T) {
	const sessions = 5
	payloads := syntheticPayloads(2)
	modes := []struct {
		name   string
		binary bool
		opts   platform.Options
	}{
		{"wal", false, platform.Options{}},
		{"wal-group", false, platform.Options{GroupCommit: true}},
		{"fsync-record", false, platform.Options{Fsync: true}},
		{"fsync-group", false, platform.Options{Fsync: true, GroupCommit: true}},
		{"fsync-group-window", false, platform.Options{Fsync: true, GroupCommit: true,
			GroupMaxDelay: 200 * time.Microsecond, GroupMaxBatch: 8}},
		// The EYB1 wire modes join the same equivalence class: the
		// protocol may change how events travel and land in the journal
		// (one batch record), never what the platform computes.
		{"wal-binary", true, platform.Options{}},
		{"fsync-group-binary", true, platform.Options{Fsync: true, GroupCommit: true}},
	}
	var wantResults, wantAnalytics []byte
	for _, m := range modes {
		m.opts.DataDir = t.TempDir()
		results, analytics := driveSchedule(t, m.opts, m.binary, payloads, sessions)
		if wantResults == nil {
			wantResults, wantAnalytics = results, analytics
			continue
		}
		if !bytes.Equal(results, wantResults) {
			t.Errorf("%s: /results diverges from %s", m.name, modes[0].name)
		}
		if !bytes.Equal(analytics, wantAnalytics) {
			t.Errorf("%s: /analytics diverges from %s", m.name, modes[0].name)
		}
	}
	if len(wantResults) == 0 || len(wantAnalytics) == 0 {
		t.Fatal("empty reference bodies")
	}
}
