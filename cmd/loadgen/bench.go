// Benchmark mode (-bench): the platform's durability-mode matrix plus
// the video-delivery hot path.
//
// Five scenarios run the identical persona lifecycle against fresh
// in-process servers — in-memory, buffered WAL, per-record fsync,
// opportunistic group-commit fsync, and windowed group-commit fsync —
// and the report lands as machine-readable JSON so a committed
// baseline (BENCH_platform.json at the repo root) can gate regressions
// in CI. "Ingest" is the write hot path the paper's crowd hammers: the
// events and responses endpoints combined.
//
// A sixth scenario, video-heavy, hammers the content-addressed blob
// read path alone: a tight loop of mixed conditional (If-None-Match →
// 304), full-body and Range GETs against the in-memory tier, driven
// through a reused null ResponseWriter so the measurement is the
// serving stack, not the driver. It gates two absolutes — the mem-tier
// throughput floor and the video p99 budget — on top of the usual
// baseline comparison.
//
// A seventh pair, json-events and binary-batch, prices the EYB1 wire
// protocol: the identical 64-record flush driven as 64 per-record JSON
// POSTs and as one binary batch POST against pre-joined sessions,
// compared in records/s. The run fails unless binary clears
// binaryBatchFloor times the JSON rate — the gate that keeps the
// zero-alloc decode path and single-lock batch apply earning their
// complexity.
//
// A scale-out pair, single-node and cluster-3node, prices campaign
// partitioning: the identical fsync-record crowd against one server
// and against a 3-node in-process cluster (WAL windows shipping to
// followers, requests proxied through the router), compared in
// sessions/s. The run fails unless the cluster clears
// clusterSessionFloor times the single node — the near-linear-scaling
// gate from the cluster subsystem's charter.
//
// Each trial runs two twins back to back with the instrumented run: a
// telemetry-off twin (every scenario) gating the cost of /metrics, and
// a tracing-on twin (mem at the production 1% sample, the windowed
// group-commit scenario at a dense 100%) gating the cost of request
// tracing — both against -bench-overhead-tolerance on the mem
// scenario. The durable tracing
// twin additionally reads /debug/traces at the end of its run and
// reduces the retained ingest traces to a per-stage p99 breakdown; the
// bench fails unless the per-stage sum accounts for ≥90% of the
// trace-level e2e ingest p99, so the stage attribution provably tiles
// the latency it claims to explain.
//
// Every scenario starts with a warmup ramp (benchWarmup) that drives
// the full workload without recording stats, so cold-start effects
// never contaminate the percentiles, and every in-memory scenario's
// latency profile passes through checkLatencySkew: a p99 more than
// 1000x its p50 on a pure-CPU endpoint is a measurement bug (the old
// join p99 read 243ms against a 0.025ms p50 because first-fetch video
// decodes ran inside the clock), not a serving regression, and fails
// the bench loudly instead of landing in a committed baseline.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/eyeorg/eyeorg/internal/cluster"
	"github.com/eyeorg/eyeorg/internal/parallel"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/trace"
	"github.com/eyeorg/eyeorg/internal/wire"
)

type benchSettings struct {
	kind        string
	concurrency int
	duration    time.Duration
	sessions    int
	seed        int64
	shards      int
	payloads    [][]byte
	http        bool
	trials      int
	// dataDir is the parent for the per-scenario journal directories.
	// Empty falls back to the OS temp dir — which on distros with a
	// tmpfs /tmp measures RAM, not storage; point it at a real disk
	// when the fsync numbers matter.
	dataDir   string
	out       string
	baseline  string
	tolerance float64
	// overheadTol is the fractional throughput cost telemetry may have
	// over an uninstrumented run of the same matrix before the bench
	// fails (<0 disables the gate).
	overheadTol float64
}

// directTransport dispatches requests straight into the handler on the
// caller's goroutine. The default bench transport: it takes the TCP
// stack — whose scheduling tail drowns the storage signal on small
// hosts — out of the measurement, so the numbers profile the ingest
// pipeline (handlers, shard locks, journal, fsync) itself. -bench-http
// restores the full network path.
type directTransport struct{ h http.Handler }

func (d directTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// benchEndpoint is one endpoint's latency profile.
type benchEndpoint struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// benchScenario is one durability mode's full result.
type benchScenario struct {
	Name    string `json:"name"`
	Persist bool   `json:"persist"`
	Fsync   bool   `json:"fsync"`
	// Concurrency is the driver worker count this scenario actually ran
	// with: pure-CPU scenarios are capped by cpuConcurrency, the disk-
	// backed ones keep the requested -concurrency.
	Concurrency  int                      `json:"concurrency"`
	GroupCommit  bool                     `json:"group_commit"`
	DurationS    float64                  `json:"duration_s"`
	Sessions     int64                    `json:"sessions"`
	Completed    int64                    `json:"completed"`
	Errors       int64                    `json:"errors"`
	Requests     int                      `json:"requests"`
	SessionsPerS float64                  `json:"sessions_per_s"`
	RequestsPerS float64                  `json:"requests_per_s"`
	IngestP50Ms  float64                  `json:"ingest_p50_ms"`
	IngestP99Ms  float64                  `json:"ingest_p99_ms"`
	Endpoints    map[string]benchEndpoint `json:"endpoints"`
	// ServerIngestP99Ms is the ingest p99 the server itself reported
	// via /metrics at the end of the run — the cross-check that the
	// self-reported latency tracks the client-observed IngestP99Ms.
	ServerIngestP99Ms float64 `json:"server_ingest_p99_ms,omitempty"`
	// VideoP50Ms/VideoP99Ms (video-heavy only) profile all video GETs
	// combined — conditional, full and Range — the numbers the p99
	// budget gates on.
	VideoP50Ms float64 `json:"video_p50_ms,omitempty"`
	VideoP99Ms float64 `json:"video_p99_ms,omitempty"`
	// UninstrumentedRequestsPerS is the same scenario re-run with
	// telemetry disabled; TelemetryOverheadPct is the throughput cost
	// of instrumentation relative to it (positive = telemetry slower).
	UninstrumentedRequestsPerS float64 `json:"uninstrumented_requests_per_s,omitempty"`
	TelemetryOverheadPct       float64 `json:"telemetry_overhead_pct,omitempty"`
	// TracedRequestsPerS is the tracing twin: the same scenario with
	// every request stage-stamped (mem retains the production 1%
	// sample, the durable scenario every request); TracingOverheadPct
	// is its throughput cost relative to the tracing-off instrumented
	// run, as a median of per-trial paired ratios (positive = tracing
	// slower).
	TracedRequestsPerS float64 `json:"traced_requests_per_s,omitempty"`
	TracingOverheadPct float64 `json:"tracing_overhead_pct,omitempty"`
	// RecordsPerS (ingest-path scenarios only) is decoded interaction
	// records per second — the unit that makes json-events and
	// binary-batch comparable: one binary request carries
	// ingestBatchRecords records, one JSON request carries one.
	RecordsPerS float64 `json:"records_per_s,omitempty"`
	// StageP99Ms (tracing twin only) is the per-stage p99 breakdown of
	// the ingest routes, read back from the server's /debug/traces ring
	// at the end of the run. StageSumP99Ms sums the per-stage p99s and
	// TraceTotalP99Ms is the p99 of whole-trace durations — the
	// checkpoint model tiles wall time, so the sum must account for the
	// e2e latency (runBench gates it at ≥90%), not merely decorate it.
	StageP99Ms      map[string]float64 `json:"stage_p99_ms,omitempty"`
	StageSumP99Ms   float64            `json:"stage_sum_p99_ms,omitempty"`
	TraceTotalP99Ms float64            `json:"trace_total_p99_ms,omitempty"`
	// SessionsToDecision (decision-pair scenarios only) is how many
	// sessions the campaign consumed before its verdict was available:
	// the fixed budget for fixed-campaign, the stopper's closing point
	// for adaptive-campaign. These scenarios measure sample efficiency,
	// not throughput, so their RequestsPerS stays zero and the baseline
	// comparison skips them.
	SessionsToDecision int `json:"sessions_to_decision,omitempty"`
}

// benchReport is the -bench-out document.
type benchReport struct {
	Kind        string  `json:"kind"`
	Concurrency int     `json:"concurrency"`
	Videos      int     `json:"videos"`
	Seed        int64   `json:"seed"`
	Trials      int     `json:"trials"`
	DurationS   float64 `json:"target_duration_s"`
	// FsyncIngestP99Speedup is per-record fsync ingest p99 divided by
	// group-commit fsync ingest p99 — the headline group-commit win.
	FsyncIngestP99Speedup float64 `json:"fsync_ingest_p99_speedup"`
	// BinaryBatchSpeedup is binary-batch records/s divided by
	// json-events records/s — the headline wire-protocol win, gated at
	// binaryBatchFloor.
	BinaryBatchSpeedup float64 `json:"binary_batch_speedup"`
	// SessionsToDecisionSpeedup is fixed-campaign sessions-to-decision
	// divided by adaptive-campaign sessions-to-decision on the synthetic
	// high-agreement crowd — the headline adaptive-stopping win, gated
	// at adaptiveDecisionFloor.
	SessionsToDecisionSpeedup float64 `json:"sessions_to_decision_speedup,omitempty"`
	// ClusterSessionSpeedup is cluster-3node sessions/s divided by
	// single-node sessions/s, both fsync-record — the headline scale-out
	// win, gated at clusterSessionFloor.
	ClusterSessionSpeedup float64         `json:"cluster_session_speedup,omitempty"`
	Scenarios             []benchScenario `json:"scenarios"`
}

const (
	// videoReqFloor is the video-heavy scenario's absolute throughput
	// gate: the content-addressed read path must clear 100k req/s on
	// the in-memory tier, every run, regardless of baseline.
	videoReqFloor = 100_000
	// videoP99BudgetMs pins video-serving tail latency to the video
	// endpoint p99 the pre-blob-store baseline measured (0.303ms): the
	// cache rework may not buy throughput with tail latency.
	videoP99BudgetMs = 0.303
	// ingestBatchRecords is the flush size the ingest-path scenarios
	// drive: one binary request per 64 records vs 64 JSON requests.
	ingestBatchRecords = 64
	// binaryBatchFloor is the minimum records/s multiple the binary
	// batch path must hold over per-event JSON — the gate that keeps the
	// wire protocol earning its complexity. One request instead of 64
	// amortizes the whole HTTP/mux/trace overhead and takes the session
	// shard lock once, so well under 2x means the decoder or the batch
	// apply path regressed.
	binaryBatchFloor = 1.5
	// fixedCampaignSessions is the fixed leg's session budget — roughly
	// the ~100 sessions per campaign the paper's deployment collects
	// before analysis.
	fixedCampaignSessions = 100
	// adaptiveSessionCap bounds the adaptive leg in case the stopper
	// never closes (which itself fails the speedup gate).
	adaptiveSessionCap = 2 * fixedCampaignSessions
	// decisionHalfWidthS is the decision pair's stopping target: the
	// per-video 95% CI must shrink to ±0.25s of user-perceived load
	// time, comfortably inside the synthetic crowd's ±0.1s agreement.
	decisionHalfWidthS = 0.25
	// adaptiveDecisionFloor is the minimum sessions-to-decision multiple
	// adaptive stopping must save over the fixed budget on the
	// high-agreement crowd. VidPlat reports order-of-magnitude savings;
	// 2x is the floor under which the subsystem stops earning its keep.
	adaptiveDecisionFloor = 2.0
	// clusterNodes is the scale-out pair's cluster size.
	clusterNodes = 3
	// clusterSyncFloor is the modeled device-flush latency both legs of
	// the scale-out pair run under (store.Options.SyncDelay). CI hosts
	// put every node's WAL on one filesystem whose journal thread
	// partially serializes cross-file fsyncs and whose write cache makes
	// a flush nearly free — both artifacts of the shared host, not of
	// the deployment the pair prices, where each node owns its own disk.
	// A fixed 2ms flush (ordinary SATA/network-volume territory) makes
	// each node's durability pipeline cost what an independent device
	// would, so the measured speedup reflects partitioning, not the
	// host's cache.
	clusterSyncFloor = 2 * time.Millisecond
	// clusterSessionFloor is the minimum session-throughput multiple the
	// 3-node cluster must hold over a single node, both in per-record
	// fsync mode — the durability configuration where scale-out pays:
	// each node owns an independent fsync pipeline, so three nodes run
	// three flushes in parallel where one node serializes them. Router
	// proxying, window shipping to the followers, and imperfect campaign
	// balance all eat into the ideal 3x; under 2.2x the partitioning
	// stops earning its keep.
	clusterSessionFloor = 2.2
)

// benchWarmup sizes the unrecorded ramp that precedes every measured
// window: a fifth of the duration, clamped to [200ms, 1s] — long
// enough to absorb server cold start and first-touch costs, short
// enough to keep the matrix cheap.
func benchWarmup(d time.Duration) time.Duration {
	w := d / 5
	if w < 200*time.Millisecond {
		w = 200 * time.Millisecond
	}
	if w > time.Second {
		w = time.Second
	}
	return w
}

// cpuConcurrency caps the driver's worker count for pure-CPU scenarios
// (mem, video-heavy) at a small multiple of GOMAXPROCS. With direct
// dispatch a worker IS the server goroutine, so extra workers beyond
// what the cores can run add zero server load — they only lengthen the
// scheduler's run queue in front of the latency clock. On one core, 32
// compute-bound workers mean a goroutine that parks mid-request (GC
// mark assist, preemption) rejoins behind 31 full timeslices: a ~300ms
// artifact the old baseline recorded as a 243ms join p99. The fsync
// scenarios keep the requested concurrency: their workers park on
// journal I/O (a short run queue regardless), and group-commit
// batching only exists when many acks are genuinely in flight.
func cpuConcurrency(requested int) int {
	cap := 4 * runtime.GOMAXPROCS(0)
	if requested < cap {
		return requested
	}
	return cap
}

// runBench executes the matrix and reports success: no scenario may
// error out or complete zero sessions, and with a baseline no scenario
// may regress its throughput beyond the tolerance.
func runBench(set benchSettings) bool {
	modes := []struct {
		name    string
		persist bool
		opts    platform.Options
	}{
		{"mem", false, platform.Options{}},
		{"wal", true, platform.Options{}},
		{"fsync-record", true, platform.Options{Fsync: true}},
		{"fsync-group", true, platform.Options{Fsync: true, GroupCommit: true}},
		// The windowed variant trades a bounded ack delay for far fewer
		// fsyncs; it is the durable configuration for ingest-heavy crowds
		// whose arrival rate alone does not fill opportunistic batches.
		{"fsync-group-window", true, platform.Options{Fsync: true, GroupCommit: true,
			GroupMaxDelay: 2 * time.Millisecond, GroupMaxBatch: 64}},
	}
	trials := set.trials
	if trials <= 0 {
		trials = 1
	}
	rep := benchReport{
		Kind:        set.kind,
		Concurrency: set.concurrency,
		Videos:      len(set.payloads),
		Seed:        set.seed,
		Trials:      trials,
		DurationS:   set.duration.Seconds(),
	}
	// The tracing twin runs on two scenarios only: mem, where the pure-
	// CPU stamping cost is proportionally largest and gateable, and the
	// windowed group-commit scenario — the durable ingest configuration
	// — where the retained traces feed the per-stage latency breakdown.
	// The mem twin runs the production tracing configuration (1%
	// retention: the always-on cost is checkpoint stamping, which the
	// sample rate does not amortize); the durable twin retains every
	// request so the stage breakdown sees a dense capture.
	traceTwin := map[string]float64{"mem": 0.01, "fsync-group-window": 1}
	ok := true
	memOverhead := math.NaN()
	memTraceOverhead := math.NaN()
	for _, m := range modes {
		// Throughput on a shared host swings tens of percent run to run
		// (page cache, device, CPU frequency); each scenario therefore
		// runs -bench-trials times and reports its median-throughput
		// trial, so neither the committed baseline nor a CI run gates on
		// a lucky or unlucky sample. The telemetry-off and tracing-on
		// twins of each trial run back to back with it, so slow host
		// drift lands on both sides of the overhead deltas instead of
		// inside them. mem is the scenario both overhead gates read, and
		// a median over 3 paired ratios is still one unlucky GC cycle
		// from a phantom failure — so the gated scenario gets two extra
		// trials whenever the gate is armed.
		scTrials := trials
		if m.name == "mem" && set.overheadTol >= 0 {
			scTrials = trials + 2
		}
		instRuns := make([]benchScenario, 0, scTrials)
		plainRuns := make([]benchScenario, 0, scTrials)
		tracedRuns := make([]benchScenario, 0, scTrials)
		for trial := 0; trial < scTrials; trial++ {
			instRuns = append(instRuns, mustScenario(m.name, m.persist, m.opts, set, true, 0, &ok))
			if set.overheadTol >= 0 {
				plainRuns = append(plainRuns, mustScenario(m.name, m.persist, m.opts, set, false, 0, &ok))
				if traceTwin[m.name] > 0 {
					tracedRuns = append(tracedRuns, mustScenario(m.name, m.persist, m.opts, set, true, traceTwin[m.name], &ok))
				}
			}
		}
		sc := medianThroughput(instRuns)
		if len(plainRuns) > 0 {
			if plain := medianThroughput(plainRuns); plain.RequestsPerS > 0 {
				sc.UninstrumentedRequestsPerS = plain.RequestsPerS
				sc.TelemetryOverheadPct = pairedOverheadPct(plainRuns, instRuns)
				if m.name == "mem" {
					memOverhead = sc.TelemetryOverheadPct
				}
			}
		}
		if len(tracedRuns) > 0 {
			if traced := medianThroughput(tracedRuns); traced.RequestsPerS > 0 {
				sc.TracedRequestsPerS = traced.RequestsPerS
				sc.TracingOverheadPct = pairedOverheadPct(instRuns, tracedRuns)
				sc.StageP99Ms = traced.StageP99Ms
				sc.StageSumP99Ms = traced.StageSumP99Ms
				sc.TraceTotalP99Ms = traced.TraceTotalP99Ms
				if m.name == "mem" {
					memTraceOverhead = sc.TracingOverheadPct
				}
			}
		}
		logf("bench %-18s %8.1f req/s  ingest p50=%-9s p99=%-9s server-p99=%-9s  (%d sessions, %d errors, median of %d)",
			sc.Name, sc.RequestsPerS, fmt.Sprintf("%.2fms", sc.IngestP50Ms),
			fmt.Sprintf("%.2fms", sc.IngestP99Ms), fmt.Sprintf("%.2fms", sc.ServerIngestP99Ms),
			sc.Sessions, sc.Errors, scTrials)
		if m.name == "mem" && !checkLatencySkew(sc) {
			ok = false
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	// The video-heavy scenario gates the content-addressed read path on
	// two absolutes — the mem-tier throughput floor and the video p99
	// budget — on top of the baseline comparison every gated scenario
	// gets. Its telemetry twin lands in the report like the others', but
	// the 5% overhead gate stays on the ingest mem scenario only.
	videoRuns := make([]benchScenario, 0, trials)
	videoPlain := make([]benchScenario, 0, trials)
	for trial := 0; trial < trials; trial++ {
		videoRuns = append(videoRuns, mustVideoScenario(set, true, &ok))
		if set.overheadTol >= 0 {
			videoPlain = append(videoPlain, mustVideoScenario(set, false, &ok))
		}
	}
	vsc := medianThroughput(videoRuns)
	if len(videoPlain) > 0 {
		if plain := medianThroughput(videoPlain); plain.RequestsPerS > 0 {
			vsc.UninstrumentedRequestsPerS = plain.RequestsPerS
			vsc.TelemetryOverheadPct = pairedOverheadPct(videoPlain, videoRuns)
		}
	}
	logf("bench %-18s %8.1f req/s  video  p50=%-9s p99=%-9s  (%d requests, %d errors, median of %d)",
		vsc.Name, vsc.RequestsPerS, fmt.Sprintf("%.3fms", vsc.VideoP50Ms),
		fmt.Sprintf("%.3fms", vsc.VideoP99Ms), vsc.Requests, vsc.Errors, trials)
	if vsc.RequestsPerS < videoReqFloor {
		logf("bench REGRESSION video-heavy: %.0f req/s under the %d req/s mem-tier floor", vsc.RequestsPerS, videoReqFloor)
		ok = false
	}
	if vsc.VideoP99Ms > videoP99BudgetMs {
		logf("bench REGRESSION video-heavy: video p99 %.3fms over the %.3fms budget", vsc.VideoP99Ms, videoP99BudgetMs)
		ok = false
	}
	if !checkLatencySkew(vsc) {
		ok = false
	}
	rep.Scenarios = append(rep.Scenarios, vsc)
	// The ingest-path pair prices the wire protocol: the same 64-record
	// flush driven as per-record JSON and as one binary batch, compared
	// in records/s. Trials pair back to back like the overhead twins so
	// host drift cancels out of the speedup; the two modes share a
	// RequestsPerS-sorted median, which within a mode orders identically
	// to records/s.
	jsonRuns := make([]benchScenario, 0, trials)
	binRuns := make([]benchScenario, 0, trials)
	for trial := 0; trial < trials; trial++ {
		jsonRuns = append(jsonRuns, mustIngestScenario(set, false, &ok))
		binRuns = append(binRuns, mustIngestScenario(set, true, &ok))
	}
	jsc := medianThroughput(jsonRuns)
	bsc := medianThroughput(binRuns)
	logf("bench %-18s %8.1f rec/s  ingest p50=%-9s p99=%-9s  (%d requests, %d errors, median of %d)",
		jsc.Name, jsc.RecordsPerS, fmt.Sprintf("%.3fms", jsc.IngestP50Ms),
		fmt.Sprintf("%.3fms", jsc.IngestP99Ms), jsc.Requests, jsc.Errors, trials)
	logf("bench %-18s %8.1f rec/s  ingest p50=%-9s p99=%-9s  (%d requests, %d errors, median of %d)",
		bsc.Name, bsc.RecordsPerS, fmt.Sprintf("%.3fms", bsc.IngestP50Ms),
		fmt.Sprintf("%.3fms", bsc.IngestP99Ms), bsc.Requests, bsc.Errors, trials)
	if jsc.RecordsPerS > 0 {
		rep.BinaryBatchSpeedup = bsc.RecordsPerS / jsc.RecordsPerS
		logf("binary batch ingest: %.0f rec/s vs json %.0f rec/s (%.1fx, floor %.1fx)",
			bsc.RecordsPerS, jsc.RecordsPerS, rep.BinaryBatchSpeedup, float64(binaryBatchFloor))
		if rep.BinaryBatchSpeedup < binaryBatchFloor {
			logf("bench REGRESSION binary-batch: %.2fx over json-events is under the %.1fx floor",
				rep.BinaryBatchSpeedup, float64(binaryBatchFloor))
			ok = false
		}
	}
	rep.Scenarios = append(rep.Scenarios, jsc, bsc)
	// The decision pair prices adaptive stopping in sessions, not
	// req/s: the same deterministic high-agreement crowd (timeline
	// answers at 3000ms ± 100ms) drives a fixed-budget campaign and an
	// adaptive one that closes itself, and the report gates on how many
	// sessions the verdict cost. One trial each — the drive is
	// single-threaded and seeded, so reruns are bit-identical.
	fixedSc := mustDecisionScenario(set, false, &ok)
	adaptSc := mustDecisionScenario(set, true, &ok)
	logf("bench %-18s decision in %d sessions", fixedSc.Name, fixedSc.SessionsToDecision)
	logf("bench %-18s decision in %d sessions", adaptSc.Name, adaptSc.SessionsToDecision)
	if adaptSc.SessionsToDecision > 0 {
		rep.SessionsToDecisionSpeedup = float64(fixedSc.SessionsToDecision) / float64(adaptSc.SessionsToDecision)
		logf("adaptive stopping: %d sessions to decision vs fixed %d (%.1fx, floor %.1fx)",
			adaptSc.SessionsToDecision, fixedSc.SessionsToDecision,
			rep.SessionsToDecisionSpeedup, float64(adaptiveDecisionFloor))
		if rep.SessionsToDecisionSpeedup < adaptiveDecisionFloor {
			logf("bench REGRESSION adaptive-campaign: %.2fx sessions-to-decision saving is under the %.1fx floor",
				rep.SessionsToDecisionSpeedup, float64(adaptiveDecisionFloor))
			ok = false
		}
	}
	rep.Scenarios = append(rep.Scenarios, fixedSc, adaptSc)
	// The scale-out pair prices campaign partitioning: the identical
	// persona crowd against one fsync-record node and against a 3-node
	// fsync-record cluster behind the proxying router, spread over
	// enough campaigns that every node owns live traffic. Trials pair
	// back to back so device drift cancels out of the speedup; each
	// leg's median lands in the report like every other scenario. The
	// cluster leg runs first per trial because its campaign count is
	// placement-driven (seed until every node owns one), and the single
	// leg then seeds the same count so both legs split the workers over
	// identical campaign sets.
	singleRuns := make([]benchScenario, 0, trials)
	clusterRuns := make([]benchScenario, 0, trials)
	for trial := 0; trial < trials; trial++ {
		csc, nCampaigns := mustClusterScenario(set, clusterNodes, 0, &ok)
		clusterRuns = append(clusterRuns, csc)
		ssc, _ := mustClusterScenario(set, 1, nCampaigns, &ok)
		singleRuns = append(singleRuns, ssc)
	}
	ssc := medianThroughput(singleRuns)
	csc := medianThroughput(clusterRuns)
	logf("bench %-18s %8.1f req/s  %7.1f sessions/s  ingest p99=%-9s  (%d sessions, %d errors, median of %d)",
		ssc.Name, ssc.RequestsPerS, ssc.SessionsPerS, fmt.Sprintf("%.2fms", ssc.IngestP99Ms), ssc.Sessions, ssc.Errors, trials)
	logf("bench %-18s %8.1f req/s  %7.1f sessions/s  ingest p99=%-9s  (%d sessions, %d errors, median of %d)",
		csc.Name, csc.RequestsPerS, csc.SessionsPerS, fmt.Sprintf("%.2fms", csc.IngestP99Ms), csc.Sessions, csc.Errors, trials)
	if ssc.SessionsPerS > 0 {
		rep.ClusterSessionSpeedup = csc.SessionsPerS / ssc.SessionsPerS
		logf("cluster scale-out: %.1f sessions/s on %d nodes vs %.1f on one (%.1fx, floor %.1fx)",
			csc.SessionsPerS, clusterNodes, ssc.SessionsPerS,
			rep.ClusterSessionSpeedup, float64(clusterSessionFloor))
		if rep.ClusterSessionSpeedup < clusterSessionFloor {
			logf("bench REGRESSION cluster-3node: %.2fx over single-node is under the %.1fx floor",
				rep.ClusterSessionSpeedup, float64(clusterSessionFloor))
			ok = false
		}
	}
	rep.Scenarios = append(rep.Scenarios, ssc, csc)
	// The overhead gate reads only the mem scenario: telemetry cost is a
	// pure CPU effect, and mem is where it is proportionally largest and
	// the run-to-run variance smallest — the disk-backed scenarios swing
	// ±20% with device noise (see the committed baseline's per-scenario
	// telemetry_overhead_pct), which would drown a 5% gate in false
	// signal either way. The other scenarios' overheads still land in
	// the report for inspection.
	if set.overheadTol >= 0 && !math.IsNaN(memOverhead) {
		if memOverhead > set.overheadTol*100 {
			logf("bench REGRESSION: telemetry costs %.1f%% of mem throughput (tolerance %.0f%%)",
				memOverhead, set.overheadTol*100)
			ok = false
		} else {
			logf("bench telemetry overhead: %.1f%% on mem (tolerance %.0f%%; disk scenarios informational)",
				memOverhead, set.overheadTol*100)
		}
	}
	// The tracing twin reuses the same tolerance: stage stamping runs on
	// every request while tracing is on, so like telemetry it must stay
	// effectively free where it is proportionally most visible (mem).
	if set.overheadTol >= 0 && !math.IsNaN(memTraceOverhead) {
		if memTraceOverhead > set.overheadTol*100 {
			logf("bench REGRESSION: tracing costs %.1f%% of mem throughput (tolerance %.0f%%)",
				memTraceOverhead, set.overheadTol*100)
			ok = false
		} else {
			logf("bench tracing overhead: %.1f%% on mem (tolerance %.0f%%)",
				memTraceOverhead, set.overheadTol*100)
		}
	}
	// Stage-attribution audit on the durable scenario's tracing twin:
	// print the per-stage p99 breakdown and require the per-stage sum to
	// account for ≥90% of the trace-level e2e ingest p99 — the proof
	// that the checkpoint stages tile the latency they claim to explain.
	if durable := rep.scenario("fsync-group-window"); durable != nil && durable.TraceTotalP99Ms > 0 {
		logf("bench %s ingest stage breakdown (p99 per stage, traced twin):", durable.Name)
		for i := 0; i < trace.NumStages; i++ {
			if ms, present := durable.StageP99Ms[trace.Stage(i).String()]; present {
				logf("  %-10s %9.3fms", trace.Stage(i).String(), ms)
			}
		}
		coverage := durable.StageSumP99Ms / durable.TraceTotalP99Ms * 100
		logf("  stage p99 sum %.3fms vs e2e ingest p99 %.3fms (%.0f%% accounted)",
			durable.StageSumP99Ms, durable.TraceTotalP99Ms, coverage)
		if coverage < 90 {
			logf("bench REGRESSION: stage breakdown accounts for only %.0f%% of the durable ingest p99 (floor 90%%)", coverage)
			ok = false
		}
	}
	if record := rep.scenario("fsync-record"); record != nil {
		for _, name := range []string{"fsync-group", "fsync-group-window"} {
			group := rep.scenario(name)
			if group == nil || group.IngestP99Ms <= 0 {
				continue
			}
			speedup := record.IngestP99Ms / group.IngestP99Ms
			logf("fsync ingest p99: per-record %.2fms vs %s %.2fms (%.1fx)",
				record.IngestP99Ms, name, group.IngestP99Ms, speedup)
			if speedup > rep.FsyncIngestP99Speedup {
				rep.FsyncIngestP99Speedup = speedup
			}
		}
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("bench report: %v", err)
	}
	if err := os.WriteFile(set.out, append(buf, '\n'), 0o644); err != nil {
		fatalf("bench report: %v", err)
	}
	logf("bench report written to %s", set.out)
	if set.baseline != "" && !compareBaseline(set.baseline, &rep, set.tolerance) {
		ok = false
	}
	return ok
}

// mustDecisionScenario runs one leg of the decision pair, clearing *ok
// when it errored or reached no decision.
func mustDecisionScenario(set benchSettings, adaptive bool, ok *bool) benchScenario {
	sc, err := runDecisionScenario(set, adaptive)
	if err != nil {
		fatalf("bench %s: %v", sc.Name, err)
	}
	if sc.Errors > 0 || sc.SessionsToDecision == 0 {
		logf("bench %s FAILED: %d errors, %d sessions to decision", sc.Name, sc.Errors, sc.SessionsToDecision)
		*ok = false
	}
	return sc
}

// runDecisionScenario drives one leg of the fixed-vs-adaptive pair: a
// deterministic single-threaded crowd answering every timeline test at
// 3000ms ± 100ms (high agreement — the case adaptive stopping exists
// for). The fixed leg spends the full paper-sized session budget; the
// adaptive leg joins until the server refuses with 409 because every
// per-video interval resolved to decisionHalfWidthS.
func runDecisionScenario(set benchSettings, adaptiveMode bool) (benchScenario, error) {
	name := "fixed-campaign"
	opts := platform.Options{Shards: set.shards, SnapshotEvery: -1}
	if adaptiveMode {
		name = "adaptive-campaign"
		opts.Adaptive = true
		opts.CIHalfWidth = decisionHalfWidthS
		opts.AdaptiveSeed = set.seed
	}
	sc := benchScenario{Name: name, Concurrency: 1}
	srv, err := platform.Open(opts)
	if err != nil {
		return sc, err
	}
	defer srv.Close()
	client := &http.Client{Transport: directTransport{h: srv.Handler()}}
	target := "http://bench.local"
	campaign, _, err := seedCampaign(client, target, "timeline", set.payloads)
	if err != nil {
		return sc, fmt.Errorf("campaign: %w", err)
	}
	budget := fixedCampaignSessions
	if adaptiveMode {
		budget = adaptiveSessionCap
	}
	start := time.Now()
	for sc.Completed < int64(budget) {
		closed, err := driveDecisionSession(client, target, campaign, int(sc.Completed))
		if err != nil {
			sc.Errors++
			return sc, err
		}
		if closed {
			break
		}
		sc.Completed++
	}
	sc.Sessions = sc.Completed
	sc.SessionsToDecision = int(sc.Completed)
	sc.DurationS = time.Since(start).Seconds()
	return sc, nil
}

// driveDecisionSession runs one synchronous session of the decision
// crowd: join (a 409 means the adaptive stopper closed the campaign —
// the decision point), one engagement batch per distinct assigned
// video (so the soft rule passes), then every answer at 3000ms plus a
// deterministic ±100ms jitter keyed by (session, test) — a crowd whose
// agreement is well inside decisionHalfWidthS.
func driveDecisionSession(client *http.Client, target, campaign string, n int) (closed bool, err error) {
	joinBody := fmt.Sprintf(`{"campaign":%q,"worker":{"id":"decider-%d","source":"loadgen"},"captcha":"bench"}`, campaign, n)
	var jr platform.JoinResponse
	status, _, err := doJSON(client, "POST", target+"/api/v1/sessions", []byte(joinBody), &jr)
	if status == http.StatusConflict {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("join: %w", err)
	}
	if status != http.StatusCreated {
		return false, fmt.Errorf("join: status %d", status)
	}
	eventsURL := target + "/api/v1/sessions/" + jr.Session + "/events"
	seen := map[string]bool{}
	for _, tt := range jr.Tests {
		if seen[tt.VideoID] {
			continue
		}
		seen[tt.VideoID] = true
		batch, err := json.Marshal(platform.EventBatch{
			VideoID: tt.VideoID, LoadMs: 800, TimeOnVideoMs: 7000,
			Plays: 1, WatchedFraction: 1,
		})
		if err != nil {
			return false, err
		}
		if st, _, err := doJSON(client, "POST", eventsURL, batch, nil); err != nil || st != http.StatusAccepted {
			return false, fmt.Errorf("events: status %d err %v", st, err)
		}
	}
	respURL := target + "/api/v1/sessions/" + jr.Session + "/responses"
	for k, tt := range jr.Tests {
		submitted := 3000 + float64((n*7+k)%21-10)*10 // 3000ms ± 100ms
		body, err := json.Marshal(platform.ResponseBody{
			TestID:       tt.TestID,
			SliderMs:     submitted,
			SubmittedMs:  submitted,
			KeptOriginal: true,
		})
		if err != nil {
			return false, err
		}
		if st, _, err := doJSON(client, "POST", respURL, body, nil); err != nil || st != http.StatusAccepted {
			return false, fmt.Errorf("response: status %d err %v", st, err)
		}
	}
	return false, nil
}

// mustScenario runs one trial, clearing *ok when it errored or
// completed nothing.
func mustScenario(name string, persist bool, opts platform.Options, set benchSettings, instrumented bool, traceSample float64, ok *bool) benchScenario {
	sc, err := runScenario(name, persist, opts, set, instrumented, traceSample)
	if err != nil {
		fatalf("bench %s: %v", name, err)
	}
	if sc.Errors > 0 || sc.Completed == 0 {
		logf("bench %s FAILED: %d errors, %d completed", sc.Name, sc.Errors, sc.Completed)
		*ok = false
	}
	return sc
}

// medianThroughput returns the median-RequestsPerS run. It sorts a
// copy: callers keep their slices in trial order, which
// pairedOverheadPct depends on.
func medianThroughput(runs []benchScenario) benchScenario {
	sorted := append([]benchScenario(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RequestsPerS < sorted[j].RequestsPerS })
	return sorted[len(sorted)/2]
}

// pairedOverheadPct prices a feature by comparing each trial's
// feature-on run against the feature-off run from the same trial —
// (1 - with/without)·100 — and returning the median of those per-trial
// deltas. The pairing is the point: on a shared host single runs swing
// ±10% with GC pacing and scheduler noise, so a ratio of two
// independently chosen medians can report several times the true cost
// (or a negative one). Back-to-back runs share most of that drift, and
// the median across trials discards the pairs where it still leaked in.
// The baseline and twin slices are parallel arrays indexed by trial.
func pairedOverheadPct(without, with []benchScenario) float64 {
	n := len(without)
	if len(with) < n {
		n = len(with)
	}
	deltas := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if without[i].RequestsPerS > 0 {
			deltas = append(deltas, (1-with[i].RequestsPerS/without[i].RequestsPerS)*100)
		}
	}
	if len(deltas) == 0 {
		return math.NaN()
	}
	sort.Float64s(deltas)
	return deltas[len(deltas)/2]
}

// runScenario boots one fresh server in the given durability mode and
// drives the persona lifecycle against it for the configured duration.
// With instrumented false the server runs without telemetry — the
// baseline the overhead gate compares against. With traceSample > 0
// the server additionally stage-stamps every request and retains that
// fraction of them, and the run reads the per-stage latency breakdown
// back from /debug/traces before the server closes.
func runScenario(name string, persist bool, opts platform.Options, set benchSettings, instrumented bool, traceSample float64) (benchScenario, error) {
	opts.Shards = set.shards
	opts.DisableTelemetry = !instrumented
	if traceSample > 0 {
		opts.TraceSample = traceSample
		opts.TraceSeed = uint64(set.seed)
		// A deep ring so the end-of-run breakdown sees a real sample of
		// steady-state traces, not just the final few hundred requests.
		opts.TraceBuffer = 8192
	}
	// Auto-snapshots are off for the matrix: a full-state snapshot is
	// a multi-megabyte fsync burst that stalls the device for every
	// scenario alike, and what is under measurement is the per-record
	// vs group-commit append pipeline, not the snapshot cadence.
	opts.SnapshotEvery = -1
	if persist {
		if set.dataDir != "" {
			if err := os.MkdirAll(set.dataDir, 0o755); err != nil {
				return benchScenario{}, err
			}
		}
		dir, err := os.MkdirTemp(set.dataDir, "eyeorg-bench-*")
		if err != nil {
			return benchScenario{}, err
		}
		defer os.RemoveAll(dir)
		opts.DataDir = dir
	}
	srv, err := platform.Open(opts)
	if err != nil {
		return benchScenario{}, err
	}
	var client *http.Client
	var target string
	var ts *httptest.Server
	if set.http {
		ts = httptest.NewServer(srv.Handler())
		client = newHTTPClient(set.concurrency)
		target = ts.URL
	} else {
		client = &http.Client{Transport: directTransport{h: srv.Handler()}}
		target = "http://bench.local"
	}
	campaign, videoIDs, err := seedCampaign(client, target, set.kind, set.payloads)
	if err != nil {
		return benchScenario{}, fmt.Errorf("campaign: %w", err)
	}
	conc := set.concurrency
	if !persist {
		conc = cpuConcurrency(conc)
	}
	agg, elapsed := runLoad(loadConfig{
		client:      client,
		target:      target,
		campaigns:   []string{campaign},
		kind:        set.kind,
		concurrency: conc,
		duration:    set.duration,
		maxSessions: int64(set.sessions),
		seed:        set.seed,
		warmup:      benchWarmup(set.duration),
		videoIDs:    videoIDs,
		payloads:    set.payloads,
	})
	var serverP99 float64
	if instrumented {
		// Fold the server's self-reported ingest p99 into the report so
		// every committed baseline carries the cross-check.
		p99, err := scrapeIngestP99(client, target)
		if err != nil {
			logf("bench %s: metrics scrape: %v", name, err)
		} else {
			serverP99 = roundMs(p99)
		}
	}
	var stages map[string]float64
	var stageSum, traceTotal float64
	if traceSample > 0 {
		// The trace surface lives on the operational DebugHandler, not
		// the API handler the load ran through; scrape it directly.
		dbg := &http.Client{Transport: directTransport{h: srv.DebugHandler()}}
		stages, stageSum, traceTotal, err = traceBreakdown(dbg, "http://bench.local")
		if err != nil {
			logf("bench %s: trace scrape: %v", name, err)
		}
	}
	if ts != nil {
		ts.Close()
	}
	if err := srv.Close(); err != nil {
		return benchScenario{}, fmt.Errorf("close: %w", err)
	}
	sc := scenarioMetrics(name, persist, opts, agg, elapsed)
	sc.Concurrency = conc
	sc.ServerIngestP99Ms = serverP99
	sc.StageP99Ms = stages
	sc.StageSumP99Ms = stageSum
	sc.TraceTotalP99Ms = traceTotal
	return sc, nil
}

// traceBreakdown reads the server's retained traces from /debug/traces
// and reduces the ingest routes (events + responses — the same set
// IngestP99Ms profiles) to a per-stage p99 breakdown: the p99 of each
// stage's attributed duration, the sum of those p99s, and the p99 of
// whole-trace durations the sum is audited against.
func traceBreakdown(client *http.Client, target string) (map[string]float64, float64, float64, error) {
	resp, err := client.Get(target + "/debug/traces")
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, fmt.Errorf("GET /debug/traces: status %d", resp.StatusCode)
	}
	var report trace.Report
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		return nil, 0, 0, err
	}
	perStage := make([][]time.Duration, trace.NumStages)
	var totals []time.Duration
	for _, rec := range report.Traces {
		if rec.Route != "events" && rec.Route != "response" {
			continue
		}
		totals = append(totals, rec.Duration)
		for i, d := range rec.Stages {
			perStage[i] = append(perStage[i], d)
		}
	}
	if len(totals) == 0 {
		return nil, 0, 0, fmt.Errorf("no ingest traces retained (%d total)", report.Count)
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	stages := make(map[string]float64, trace.NumStages)
	var sum float64
	for i, lat := range perStage {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		p99 := fmsF(pct(lat, 0.99))
		sum += p99
		if p99 > 0 {
			stages[trace.Stage(i).String()] = p99
		}
	}
	return stages, sum, fmsF(pct(totals, 0.99)), nil
}

// checkLatencySkew fails an in-memory scenario whose p99 dwarfs its
// p50: with no device in the path every endpoint is pure CPU, and a
// 1000x spread means the clock caught something that is not
// steady-state serving — a cold-start decode, a ramp, a stalled
// worker — not a serving regression. The guard exists because exactly
// that happened: the committed baseline once recorded a 243ms join p99
// against a 0.025ms p50, put there by first-fetch video decodes
// running inside the measured window.
func checkLatencySkew(sc benchScenario) bool {
	ok := true
	for name, ep := range sc.Endpoints {
		if ep.P50Ms <= 0 || ep.Requests < 100 {
			continue
		}
		if ep.P99Ms/ep.P50Ms > 1000 {
			logf("bench SKEW %s/%s: p99 %.3fms is %.0fx its p50 %.3fms — measurement contamination, not load (warmup too short? a worker stalled?)",
				sc.Name, name, ep.P99Ms, ep.P99Ms/ep.P50Ms, ep.P50Ms)
			ok = false
		}
	}
	return ok
}

// mustVideoScenario mirrors mustScenario for the sessionless video
// scenario: it completes no sessions by design, so the health check is
// zero errors and a non-empty measured window.
func mustVideoScenario(set benchSettings, instrumented bool, ok *bool) benchScenario {
	sc, err := runVideoScenario(set, instrumented)
	if err != nil {
		fatalf("bench video-heavy: %v", err)
	}
	if sc.Errors > 0 || sc.Requests == 0 {
		logf("bench video-heavy FAILED: %d errors, %d requests", sc.Errors, sc.Requests)
		*ok = false
	}
	return sc
}

// nullWriter is the video bench's ResponseWriter: it records status
// and byte count and discards the payload, reusing its header map and
// copy buffer across requests so the driver itself costs nothing
// measurable per request. ReadFrom matters: without it, ServeContent's
// io.Copy would allocate a fresh 32KB buffer per Range response and
// the bench would measure the garbage collector instead of the blob
// store.
type nullWriter struct {
	h      http.Header
	status int
	n      int64
	buf    []byte
}

func newNullWriter() *nullWriter {
	return &nullWriter{h: make(http.Header, 8), buf: make([]byte, 32<<10)}
}

func (w *nullWriter) Header() http.Header { return w.h }

func (w *nullWriter) WriteHeader(code int) { w.status = code }

func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

func (w *nullWriter) ReadFrom(src io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	var n int64
	for {
		m, err := src.Read(w.buf)
		n += int64(m)
		w.n += int64(m)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

func (w *nullWriter) reset() {
	w.status = 0
	w.n = 0
	clear(w.h)
}

// runVideoScenario drives the content-addressed video read path alone:
// each worker replays a fixed conditional/full/Range request mix
// against the in-memory tier in a tight loop, dispatching straight
// into the handler with reused requests and a nullWriter, so the
// measured cost is the mux, the handler and the blob store — not
// recorder allocation or TCP. The 5/3/2 mix mirrors a replayed crowd,
// where most fetches are browser-cache revalidations (304), some are
// cold full-body pulls, and a tail resumes with Range.
func runVideoScenario(set benchSettings, instrumented bool) (benchScenario, error) {
	srv, err := platform.Open(platform.Options{
		Shards: set.shards, DisableTelemetry: !instrumented, SnapshotEvery: -1,
	})
	if err != nil {
		return benchScenario{}, err
	}
	defer srv.Close()
	h := srv.Handler()
	client := &http.Client{Transport: directTransport{h: h}}
	target := "http://bench.local"
	_, ids, err := seedCampaign(client, target, set.kind, set.payloads)
	if err != nil {
		return benchScenario{}, fmt.Errorf("campaign: %w", err)
	}
	// One priming GET per video collects the content-hash ETag and the
	// served size the request mix is built from.
	etags := make([]string, len(ids))
	sizes := make([]int64, len(ids))
	for i, id := range ids {
		resp, err := client.Get(target + "/api/v1/videos/" + id)
		if err != nil {
			return benchScenario{}, err
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == "" || n == 0 {
			return benchScenario{}, fmt.Errorf("priming video %s: status %d, etag %q, %d bytes",
				id, resp.StatusCode, resp.Header.Get("ETag"), n)
		}
		etags[i], sizes[i] = resp.Header.Get("ETag"), n
	}
	conc := cpuConcurrency(set.concurrency)
	start := time.Now()
	recordFrom := start.Add(benchWarmup(set.duration))
	deadline := recordFrom.Add(set.duration)
	var badStatus atomic.Int32
	stats, perr := parallel.Map(conc, conc, func(w int) (*workerStats, error) {
		// Requests are built once and redispatched: a GET has no body to
		// rewind, and the mux overwrites its route match on every
		// ServeHTTP, so reuse is safe on one goroutine.
		type shot struct {
			kind  string
			req   *http.Request
			want  int
			bytes int64
		}
		shots := make([]shot, 0, len(ids)*10)
		for i, id := range ids {
			full := httptest.NewRequest("GET", "/api/v1/videos/"+id, nil)
			cond := httptest.NewRequest("GET", "/api/v1/videos/"+id, nil)
			cond.Header.Set("If-None-Match", etags[i])
			half := sizes[i] / 2
			rng := httptest.NewRequest("GET", "/api/v1/videos/"+id, nil)
			rng.Header.Set("Range", fmt.Sprintf("bytes=0-%d", half-1))
			for k := 0; k < 5; k++ {
				shots = append(shots, shot{"video_cond", cond, http.StatusNotModified, 0})
			}
			for k := 0; k < 3; k++ {
				shots = append(shots, shot{"video", full, http.StatusOK, sizes[i]})
			}
			for k := 0; k < 2; k++ {
				shots = append(shots, shot{"video_range", rng, http.StatusPartialContent, half})
			}
		}
		st := newWorkerStats()
		nw := newNullWriter()
		for i := w; ; i++ {
			now := time.Now()
			if now.After(deadline) {
				return st, nil
			}
			sh := &shots[i%len(shots)]
			nw.reset()
			h.ServeHTTP(nw, sh.req)
			if nw.status != sh.want || nw.n != sh.bytes {
				st.errors++
				badStatus.CompareAndSwap(0, int32(nw.status))
				continue
			}
			if now.After(recordFrom) {
				st.lat[sh.kind] = append(st.lat[sh.kind], time.Since(now))
			}
		}
	})
	elapsed := time.Since(recordFrom)
	if perr != nil {
		return benchScenario{}, perr
	}
	if bs := badStatus.Load(); bs != 0 {
		logf("bench video-heavy: unexpected responses (first bad status %d)", bs)
	}
	agg := merge(stats)
	sc := scenarioMetrics("video-heavy", false, platform.Options{}, agg, elapsed)
	sc.Concurrency = conc
	var all []time.Duration
	for _, name := range []string{"video", "video_cond", "video_range"} {
		all = append(all, agg.byEndpoint[name]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sc.VideoP50Ms = fmsF(pct(all, 0.50))
	sc.VideoP99Ms = fmsF(pct(all, 0.99))
	return sc, nil
}

// mustIngestScenario mirrors mustVideoScenario for the sessionless
// events-path hammer: health is zero errors and a non-empty window.
func mustIngestScenario(set benchSettings, binary bool, ok *bool) benchScenario {
	sc, err := runIngestScenario(set, binary)
	if err != nil {
		fatalf("bench %s: %v", ingestScenarioName(binary), err)
	}
	if sc.Errors > 0 || sc.Requests == 0 {
		logf("bench %s FAILED: %d errors, %d requests", sc.Name, sc.Errors, sc.Requests)
		*ok = false
	}
	return sc
}

func ingestScenarioName(binary bool) string {
	if binary {
		return "binary-batch"
	}
	return "json-events"
}

// runIngestScenario hammers the events endpoint alone on an in-memory
// server: each worker owns one pre-joined, never-completing session and
// replays a fixed flush of ingestBatchRecords engagement records in a
// tight loop — as 64 per-record JSON POSTs, or as one EYB1 batch POST.
// Direct dispatch through a reused nullWriter keeps the measurement on
// the decode + shard-lock + apply pipeline rather than the driver; the
// payload bytes are built once and replayed, so the per-request driver
// cost is one bytes.Reader on either protocol. The record values vary
// per record so the binary side exercises real varint/delta encoding
// widths, not a degenerate all-equal stream.
func runIngestScenario(set benchSettings, binary bool) (benchScenario, error) {
	srv, err := platform.Open(platform.Options{Shards: set.shards, SnapshotEvery: -1})
	if err != nil {
		return benchScenario{}, err
	}
	defer srv.Close()
	h := srv.Handler()
	client := &http.Client{Transport: directTransport{h: h}}
	target := "http://bench.local"
	campaign, _, err := seedCampaign(client, target, set.kind, set.payloads)
	if err != nil {
		return benchScenario{}, fmt.Errorf("campaign: %w", err)
	}
	conc := cpuConcurrency(set.concurrency)
	type lane struct {
		path     string
		payloads [][]byte // one per request: 64 JSON bodies, or 1 EYB1 batch
	}
	lanes := make([]lane, conc)
	for w := range lanes {
		body := fmt.Sprintf(
			`{"campaign":%q,"worker":{"id":"ingest-w%d","gender":"f","country":"IT","source":"bench"},"captcha":"bench"}`,
			campaign, w)
		var jr platform.JoinResponse
		if status, _, err := doJSON(client, "POST", target+"/api/v1/sessions", []byte(body), &jr); err != nil || status != http.StatusCreated {
			return benchScenario{}, fmt.Errorf("join ingest-w%d: status %d, err %v", w, status, err)
		}
		batches := make([]platform.EventBatch, ingestBatchRecords)
		for i := range batches {
			batches[i] = platform.EventBatch{
				VideoID:         jr.Tests[i%len(jr.Tests)].VideoID,
				LoadMs:          100 + float64(i)*3.7,
				TimeOnVideoMs:   5_000 + float64(i)*211.3,
				OutOfFocusMs:    float64(i%7) * 13.1,
				Plays:           1 + i%2,
				Pauses:          i % 3,
				Seeks:           i % 11,
				WatchedFraction: float64(i%10) / 10,
			}
		}
		ln := lane{path: "/api/v1/sessions/" + jr.Session + "/events"}
		if binary {
			var recs []wire.Record
			for _, b := range batches {
				recs = platform.AppendWireRecords(recs, b)
			}
			ln.payloads = [][]byte{wire.AppendBatch(nil, recs)}
		} else {
			for _, b := range batches {
				js, err := json.Marshal(b)
				if err != nil {
					return benchScenario{}, err
				}
				ln.payloads = append(ln.payloads, js)
			}
		}
		lanes[w] = ln
	}
	ct := "application/json"
	if binary {
		ct = wire.ContentType
	}
	start := time.Now()
	recordFrom := start.Add(benchWarmup(set.duration))
	deadline := recordFrom.Add(set.duration)
	var badStatus atomic.Int32
	stats, perr := parallel.Map(conc, conc, func(w int) (*workerStats, error) {
		ln := &lanes[w]
		st := newWorkerStats()
		nw := newNullWriter()
		for i := 0; ; i++ {
			now := time.Now()
			if now.After(deadline) {
				return st, nil
			}
			payload := ln.payloads[i%len(ln.payloads)]
			req := httptest.NewRequest("POST", ln.path, bytes.NewReader(payload))
			req.Header.Set("Content-Type", ct)
			nw.reset()
			h.ServeHTTP(nw, req)
			if nw.status != http.StatusAccepted {
				st.errors++
				badStatus.CompareAndSwap(0, int32(nw.status))
				continue
			}
			if now.After(recordFrom) {
				st.lat["events"] = append(st.lat["events"], time.Since(now))
			}
		}
	})
	elapsed := time.Since(recordFrom)
	if perr != nil {
		return benchScenario{}, perr
	}
	if bs := badStatus.Load(); bs != 0 {
		logf("bench %s: unexpected responses (first bad status %d)", ingestScenarioName(binary), bs)
	}
	agg := merge(stats)
	sc := scenarioMetrics(ingestScenarioName(binary), false, platform.Options{}, agg, elapsed)
	sc.Concurrency = conc
	perRequest := 1
	if binary {
		perRequest = ingestBatchRecords
	}
	sc.RecordsPerS = sc.RequestsPerS * float64(perRequest)
	return sc, nil
}

// mustClusterScenario runs one leg of the scale-out pair, clearing *ok
// when it errored or completed nothing, and returns the campaign count
// it seeded so the paired leg can match it.
func mustClusterScenario(set benchSettings, nodes, nCampaigns int, ok *bool) (benchScenario, int) {
	sc, seeded, err := runClusterScenario(set, nodes, nCampaigns)
	if err != nil {
		fatalf("bench %s: %v", clusterScenarioName(nodes), err)
	}
	if sc.Errors > 0 || sc.Completed == 0 {
		logf("bench %s FAILED: %d errors, %d completed", sc.Name, sc.Errors, sc.Completed)
		*ok = false
	}
	return sc, seeded
}

func clusterScenarioName(nodes int) string {
	if nodes == 1 {
		return "single-node"
	}
	return fmt.Sprintf("cluster-%dnode", nodes)
}

// runClusterScenario drives the persona lifecycle against either one
// per-record-fsync platform server (nodes == 1) or an in-process
// cluster of that many such nodes behind the proxying router, with WAL
// windows shipping to each node's follower exactly as in production.
// The campaign set spreads the crowd: the cluster leg seeds until
// every node owns at least one campaign (passing nCampaigns 0), the
// single leg replays the same count so the two legs run the identical
// workload shape. Both legs dispatch directly into the entry handler,
// so the cluster leg's measured path includes the router's buffering,
// resolution and response copying — the honest cost of the extra tier.
// Both legs run under clusterSyncFloor, pricing each node's flushes
// like an independent disk instead of the CI host's shared write
// cache; see that constant for the reasoning.
func runClusterScenario(set benchSettings, nodes, nCampaigns int) (benchScenario, int, error) {
	name := clusterScenarioName(nodes)
	if set.dataDir != "" {
		if err := os.MkdirAll(set.dataDir, 0o755); err != nil {
			return benchScenario{}, 0, err
		}
	}
	dir, err := os.MkdirTemp(set.dataDir, "eyeorg-bench-*")
	if err != nil {
		return benchScenario{}, 0, err
	}
	defer os.RemoveAll(dir)
	var h http.Handler
	var covered func() bool
	if nodes == 1 {
		srv, err := platform.Open(platform.Options{
			DataDir: dir, Fsync: true, SyncDelay: clusterSyncFloor,
			Shards: set.shards, SnapshotEvery: -1,
		})
		if err != nil {
			return benchScenario{}, 0, err
		}
		defer srv.Close()
		h = srv.Handler()
		if nCampaigns <= 0 {
			nCampaigns = 1
		}
	} else {
		members := clusterMembers[:nodes]
		cl, err := cluster.New(cluster.Config{
			Nodes: members, Dir: dir, Fsync: true, SyncDelay: clusterSyncFloor,
			SnapshotEvery: -1,
		})
		if err != nil {
			return benchScenario{}, 0, err
		}
		defer cl.Close()
		h = cl.Handler()
		covered = clusterCoverage(cl, members)
		if nCampaigns <= 0 {
			nCampaigns = nodes
		}
	}
	client := &http.Client{Transport: directTransport{h: h}}
	target := "http://bench.local"
	campaigns, videoIDs, payloads, err := seedCampaignSet(client, target, set.kind, set.payloads, nCampaigns, covered, clusterSeedCap)
	if err != nil {
		return benchScenario{}, 0, fmt.Errorf("campaigns: %w", err)
	}
	agg, elapsed := runLoad(loadConfig{
		client:      client,
		target:      target,
		campaigns:   campaigns,
		kind:        set.kind,
		concurrency: set.concurrency,
		duration:    set.duration,
		maxSessions: int64(set.sessions),
		seed:        set.seed,
		warmup:      benchWarmup(set.duration),
		videoIDs:    videoIDs,
		payloads:    payloads,
	})
	sc := scenarioMetrics(name, true, platform.Options{Fsync: true}, agg, elapsed)
	sc.Concurrency = set.concurrency
	return sc, len(campaigns), nil
}

func (r *benchReport) scenario(name string) *benchScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// scenarioMetrics folds one run's aggregate into the report shape.
func scenarioMetrics(name string, persist bool, opts platform.Options, agg *aggregate, elapsed time.Duration) benchScenario {
	secs := elapsed.Seconds()
	sc := benchScenario{
		Name:         name,
		Persist:      persist,
		Fsync:        opts.Fsync,
		GroupCommit:  opts.GroupCommit,
		DurationS:    secs,
		Sessions:     agg.sessions,
		Completed:    agg.completed,
		Errors:       agg.errors,
		Requests:     agg.requests,
		SessionsPerS: float64(agg.completed) / secs,
		RequestsPerS: float64(agg.requests) / secs,
		Endpoints:    map[string]benchEndpoint{},
	}
	var ingest []time.Duration
	for name, lat := range agg.byEndpoint {
		sc.Endpoints[name] = benchEndpoint{
			Requests: len(lat),
			P50Ms:    fmsF(pct(lat, 0.50)),
			P90Ms:    fmsF(pct(lat, 0.90)),
			P99Ms:    fmsF(pct(lat, 0.99)),
			MaxMs:    fmsF(pct(lat, 1.0)),
		}
		if name == "events" || name == "response" {
			ingest = append(ingest, lat...)
		}
	}
	sort.Slice(ingest, func(i, j int) bool { return ingest[i] < ingest[j] })
	sc.IngestP50Ms = fmsF(pct(ingest, 0.50))
	sc.IngestP99Ms = fmsF(pct(ingest, 0.99))
	return sc
}

// fmsF is a duration in float milliseconds, rounded to the microsecond
// so the committed baseline diffs stay readable.
func fmsF(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Millisecond)
}

// compareBaseline gates the run against a committed baseline, failing
// any gated scenario whose throughput regressed more than tol. The
// gate's charter is the durability pipeline — the thing the matrix
// varies — so the comparison is chosen for signal over noise:
//
//   - wal and the group-commit scenarios pass if EITHER their absolute
//     req/s OR their req/s relative to the same run's mem ceiling is
//     within tolerance. A genuine storage regression (a window
//     accidentally serialized, an ack held under a lock) tanks both;
//     machine or device noise rarely tanks both in one run, and the
//     mem-relative ratio keeps the gate meaningful on a host whose
//     absolute speed differs from the baseline machine's;
//   - mem is reported but not gated: it has no ceiling to normalize
//     by, and gating a foreign machine's absolute req/s is pure noise.
//     Pure CPU regressions are the Go benchmarks' job, not this gate's;
//   - fsync-record is reported but not gated: its serialized fsync
//     queue amplifies device variance far beyond any useful tolerance
//     (observed >30% run-to-run on one machine), and the code it
//     exercises is the same append path the gated scenarios cover;
//   - video-heavy is gated like wal (absolute OR mem-relative req/s):
//     it is pure CPU, so the mem ceiling normalizes it well. Its
//     absolute floors — videoReqFloor and videoP99BudgetMs — are
//     enforced unconditionally in runBench, baseline or not.
func compareBaseline(path string, cur *benchReport, tol float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		logf("bench baseline: %v", err)
		return false
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		logf("bench baseline %s: %v", path, err)
		return false
	}
	ok := true
	for i := range cur.Scenarios {
		sc := &cur.Scenarios[i]
		b := base.scenario(sc.Name)
		if b == nil || b.RequestsPerS <= 0 {
			// The decision pair lands here by design: it reports
			// sessions_to_decision, not throughput, and runBench gates
			// it against adaptiveDecisionFloor instead.
			logf("bench compare %s: no throughput baseline, skipping", sc.Name)
			continue
		}
		absOK := sc.RequestsPerS >= b.RequestsPerS*(1-tol)
		ratioOK := false
		if curMem, baseMem := cur.scenario("mem"), base.scenario("mem"); curMem != nil && baseMem != nil &&
			curMem.RequestsPerS > 0 && baseMem.RequestsPerS > 0 {
			ratioOK = sc.RequestsPerS/curMem.RequestsPerS >= (b.RequestsPerS/baseMem.RequestsPerS)*(1-tol)
		}
		switch {
		case sc.Name == "mem", sc.Name == "fsync-record", sc.Name == "single-node", sc.Name == "cluster-3node":
			// The scale-out pair shares fsync-record's device-variance
			// problem; its real gate is the cluster_session_speedup ratio,
			// recomputed and enforced inside every runBench.
			logf("bench compare %s: %.1f req/s vs baseline %.1f (informational, not gated)",
				sc.Name, sc.RequestsPerS, b.RequestsPerS)
		case absOK, ratioOK:
			logf("bench compare %s: %.1f req/s vs baseline %.1f ok (abs=%v ratio=%v)",
				sc.Name, sc.RequestsPerS, b.RequestsPerS, absOK, ratioOK)
		default:
			logf("bench REGRESSION %s: %.1f req/s vs baseline %.1f — absolute and mem-relative both beyond %.0f%% tolerance",
				sc.Name, sc.RequestsPerS, b.RequestsPerS, tol*100)
			ok = false
		}
	}
	return ok
}
