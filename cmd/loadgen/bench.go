// Benchmark mode (-bench): the platform's durability-mode matrix.
//
// Five scenarios run the identical persona lifecycle against fresh
// in-process servers — in-memory, buffered WAL, per-record fsync,
// opportunistic group-commit fsync, and windowed group-commit fsync —
// and the report lands as machine-readable JSON so a committed
// baseline (BENCH_platform.json at the repo root) can gate regressions
// in CI. "Ingest" is the write hot path the paper's crowd hammers: the
// events and responses endpoints combined.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"github.com/eyeorg/eyeorg/internal/platform"
)

type benchSettings struct {
	kind        string
	concurrency int
	duration    time.Duration
	sessions    int
	seed        int64
	shards      int
	payloads    [][]byte
	http        bool
	trials      int
	// dataDir is the parent for the per-scenario journal directories.
	// Empty falls back to the OS temp dir — which on distros with a
	// tmpfs /tmp measures RAM, not storage; point it at a real disk
	// when the fsync numbers matter.
	dataDir   string
	out       string
	baseline  string
	tolerance float64
	// overheadTol is the fractional throughput cost telemetry may have
	// over an uninstrumented run of the same matrix before the bench
	// fails (<0 disables the gate).
	overheadTol float64
}

// directTransport dispatches requests straight into the handler on the
// caller's goroutine. The default bench transport: it takes the TCP
// stack — whose scheduling tail drowns the storage signal on small
// hosts — out of the measurement, so the numbers profile the ingest
// pipeline (handlers, shard locks, journal, fsync) itself. -bench-http
// restores the full network path.
type directTransport struct{ h http.Handler }

func (d directTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// benchEndpoint is one endpoint's latency profile.
type benchEndpoint struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// benchScenario is one durability mode's full result.
type benchScenario struct {
	Name         string                   `json:"name"`
	Persist      bool                     `json:"persist"`
	Fsync        bool                     `json:"fsync"`
	GroupCommit  bool                     `json:"group_commit"`
	DurationS    float64                  `json:"duration_s"`
	Sessions     int64                    `json:"sessions"`
	Completed    int64                    `json:"completed"`
	Errors       int64                    `json:"errors"`
	Requests     int                      `json:"requests"`
	SessionsPerS float64                  `json:"sessions_per_s"`
	RequestsPerS float64                  `json:"requests_per_s"`
	IngestP50Ms  float64                  `json:"ingest_p50_ms"`
	IngestP99Ms  float64                  `json:"ingest_p99_ms"`
	Endpoints    map[string]benchEndpoint `json:"endpoints"`
	// ServerIngestP99Ms is the ingest p99 the server itself reported
	// via /metrics at the end of the run — the cross-check that the
	// self-reported latency tracks the client-observed IngestP99Ms.
	ServerIngestP99Ms float64 `json:"server_ingest_p99_ms,omitempty"`
	// UninstrumentedRequestsPerS is the same scenario re-run with
	// telemetry disabled; TelemetryOverheadPct is the throughput cost
	// of instrumentation relative to it (positive = telemetry slower).
	UninstrumentedRequestsPerS float64 `json:"uninstrumented_requests_per_s,omitempty"`
	TelemetryOverheadPct       float64 `json:"telemetry_overhead_pct,omitempty"`
}

// benchReport is the -bench-out document.
type benchReport struct {
	Kind        string  `json:"kind"`
	Concurrency int     `json:"concurrency"`
	Videos      int     `json:"videos"`
	Seed        int64   `json:"seed"`
	Trials      int     `json:"trials"`
	DurationS   float64 `json:"target_duration_s"`
	// FsyncIngestP99Speedup is per-record fsync ingest p99 divided by
	// group-commit fsync ingest p99 — the headline group-commit win.
	FsyncIngestP99Speedup float64         `json:"fsync_ingest_p99_speedup"`
	Scenarios             []benchScenario `json:"scenarios"`
}

// runBench executes the matrix and reports success: no scenario may
// error out or complete zero sessions, and with a baseline no scenario
// may regress its throughput beyond the tolerance.
func runBench(set benchSettings) bool {
	modes := []struct {
		name    string
		persist bool
		opts    platform.Options
	}{
		{"mem", false, platform.Options{}},
		{"wal", true, platform.Options{}},
		{"fsync-record", true, platform.Options{Fsync: true}},
		{"fsync-group", true, platform.Options{Fsync: true, GroupCommit: true}},
		// The windowed variant trades a bounded ack delay for far fewer
		// fsyncs; it is the durable configuration for ingest-heavy crowds
		// whose arrival rate alone does not fill opportunistic batches.
		{"fsync-group-window", true, platform.Options{Fsync: true, GroupCommit: true,
			GroupMaxDelay: 2 * time.Millisecond, GroupMaxBatch: 64}},
	}
	trials := set.trials
	if trials <= 0 {
		trials = 1
	}
	rep := benchReport{
		Kind:        set.kind,
		Concurrency: set.concurrency,
		Videos:      len(set.payloads),
		Seed:        set.seed,
		Trials:      trials,
		DurationS:   set.duration.Seconds(),
	}
	ok := true
	memOverhead := math.NaN()
	for _, m := range modes {
		// Throughput on a shared host swings tens of percent run to run
		// (page cache, device, CPU frequency); each scenario therefore
		// runs -bench-trials times and reports its median-throughput
		// trial, so neither the committed baseline nor a CI run gates on
		// a lucky or unlucky sample. The telemetry-off twin of each
		// trial runs back to back with it, so slow host drift lands on
		// both sides of the overhead delta instead of inside it.
		instRuns := make([]benchScenario, 0, trials)
		plainRuns := make([]benchScenario, 0, trials)
		for trial := 0; trial < trials; trial++ {
			instRuns = append(instRuns, mustScenario(m.name, m.persist, m.opts, set, true, &ok))
			if set.overheadTol >= 0 {
				plainRuns = append(plainRuns, mustScenario(m.name, m.persist, m.opts, set, false, &ok))
			}
		}
		sc := medianThroughput(instRuns)
		if len(plainRuns) > 0 {
			if plain := medianThroughput(plainRuns); plain.RequestsPerS > 0 {
				sc.UninstrumentedRequestsPerS = plain.RequestsPerS
				sc.TelemetryOverheadPct = (1 - sc.RequestsPerS/plain.RequestsPerS) * 100
				if m.name == "mem" {
					memOverhead = sc.TelemetryOverheadPct
				}
			}
		}
		log.Printf("bench %-18s %8.1f req/s  ingest p50=%-9s p99=%-9s server-p99=%-9s  (%d sessions, %d errors, median of %d)",
			sc.Name, sc.RequestsPerS, fmt.Sprintf("%.2fms", sc.IngestP50Ms),
			fmt.Sprintf("%.2fms", sc.IngestP99Ms), fmt.Sprintf("%.2fms", sc.ServerIngestP99Ms),
			sc.Sessions, sc.Errors, trials)
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	// The overhead gate reads only the mem scenario: telemetry cost is a
	// pure CPU effect, and mem is where it is proportionally largest and
	// the run-to-run variance smallest — the disk-backed scenarios swing
	// ±20% with device noise (see the committed baseline's per-scenario
	// telemetry_overhead_pct), which would drown a 5% gate in false
	// signal either way. The other scenarios' overheads still land in
	// the report for inspection.
	if set.overheadTol >= 0 && !math.IsNaN(memOverhead) {
		if memOverhead > set.overheadTol*100 {
			log.Printf("bench REGRESSION: telemetry costs %.1f%% of mem throughput (tolerance %.0f%%)",
				memOverhead, set.overheadTol*100)
			ok = false
		} else {
			log.Printf("bench telemetry overhead: %.1f%% on mem (tolerance %.0f%%; disk scenarios informational)",
				memOverhead, set.overheadTol*100)
		}
	}
	if record := rep.scenario("fsync-record"); record != nil {
		for _, name := range []string{"fsync-group", "fsync-group-window"} {
			group := rep.scenario(name)
			if group == nil || group.IngestP99Ms <= 0 {
				continue
			}
			speedup := record.IngestP99Ms / group.IngestP99Ms
			log.Printf("fsync ingest p99: per-record %.2fms vs %s %.2fms (%.1fx)",
				record.IngestP99Ms, name, group.IngestP99Ms, speedup)
			if speedup > rep.FsyncIngestP99Speedup {
				rep.FsyncIngestP99Speedup = speedup
			}
		}
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatalf("bench report: %v", err)
	}
	if err := os.WriteFile(set.out, append(buf, '\n'), 0o644); err != nil {
		log.Fatalf("bench report: %v", err)
	}
	log.Printf("bench report written to %s", set.out)
	if set.baseline != "" && !compareBaseline(set.baseline, &rep, set.tolerance) {
		ok = false
	}
	return ok
}

// mustScenario runs one trial, clearing *ok when it errored or
// completed nothing.
func mustScenario(name string, persist bool, opts platform.Options, set benchSettings, instrumented bool, ok *bool) benchScenario {
	sc, err := runScenario(name, persist, opts, set, instrumented)
	if err != nil {
		log.Fatalf("bench %s: %v", name, err)
	}
	if sc.Errors > 0 || sc.Completed == 0 {
		log.Printf("bench %s FAILED: %d errors, %d completed", sc.Name, sc.Errors, sc.Completed)
		*ok = false
	}
	return sc
}

// medianThroughput returns the median-RequestsPerS run.
func medianThroughput(runs []benchScenario) benchScenario {
	sort.Slice(runs, func(i, j int) bool { return runs[i].RequestsPerS < runs[j].RequestsPerS })
	return runs[len(runs)/2]
}

// runScenario boots one fresh server in the given durability mode and
// drives the persona lifecycle against it for the configured duration.
// With instrumented false the server runs without telemetry — the
// baseline the overhead gate compares against.
func runScenario(name string, persist bool, opts platform.Options, set benchSettings, instrumented bool) (benchScenario, error) {
	opts.Shards = set.shards
	opts.DisableTelemetry = !instrumented
	// Auto-snapshots are off for the matrix: a full-state snapshot is
	// a multi-megabyte fsync burst that stalls the device for every
	// scenario alike, and what is under measurement is the per-record
	// vs group-commit append pipeline, not the snapshot cadence.
	opts.SnapshotEvery = -1
	if persist {
		if set.dataDir != "" {
			if err := os.MkdirAll(set.dataDir, 0o755); err != nil {
				return benchScenario{}, err
			}
		}
		dir, err := os.MkdirTemp(set.dataDir, "eyeorg-bench-*")
		if err != nil {
			return benchScenario{}, err
		}
		defer os.RemoveAll(dir)
		opts.DataDir = dir
	}
	srv, err := platform.Open(opts)
	if err != nil {
		return benchScenario{}, err
	}
	var client *http.Client
	var target string
	var ts *httptest.Server
	if set.http {
		ts = httptest.NewServer(srv.Handler())
		client = newHTTPClient(set.concurrency)
		target = ts.URL
	} else {
		client = &http.Client{Transport: directTransport{h: srv.Handler()}}
		target = "http://bench.local"
	}
	campaign, err := seedCampaign(client, target, set.kind, set.payloads)
	if err != nil {
		return benchScenario{}, fmt.Errorf("campaign: %w", err)
	}
	agg, elapsed := runLoad(loadConfig{
		client:      client,
		target:      target,
		campaign:    campaign,
		kind:        set.kind,
		concurrency: set.concurrency,
		duration:    set.duration,
		maxSessions: int64(set.sessions),
		seed:        set.seed,
	})
	var serverP99 float64
	if instrumented {
		// Fold the server's self-reported ingest p99 into the report so
		// every committed baseline carries the cross-check.
		p99, err := scrapeIngestP99(client, target)
		if err != nil {
			log.Printf("bench %s: metrics scrape: %v", name, err)
		} else {
			serverP99 = roundMs(p99)
		}
	}
	if ts != nil {
		ts.Close()
	}
	if err := srv.Close(); err != nil {
		return benchScenario{}, fmt.Errorf("close: %w", err)
	}
	sc := scenarioMetrics(name, persist, opts, agg, elapsed)
	sc.ServerIngestP99Ms = serverP99
	return sc, nil
}

func (r *benchReport) scenario(name string) *benchScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// scenarioMetrics folds one run's aggregate into the report shape.
func scenarioMetrics(name string, persist bool, opts platform.Options, agg *aggregate, elapsed time.Duration) benchScenario {
	secs := elapsed.Seconds()
	sc := benchScenario{
		Name:         name,
		Persist:      persist,
		Fsync:        opts.Fsync,
		GroupCommit:  opts.GroupCommit,
		DurationS:    secs,
		Sessions:     agg.sessions,
		Completed:    agg.completed,
		Errors:       agg.errors,
		Requests:     agg.requests,
		SessionsPerS: float64(agg.completed) / secs,
		RequestsPerS: float64(agg.requests) / secs,
		Endpoints:    map[string]benchEndpoint{},
	}
	var ingest []time.Duration
	for name, lat := range agg.byEndpoint {
		sc.Endpoints[name] = benchEndpoint{
			Requests: len(lat),
			P50Ms:    fmsF(pct(lat, 0.50)),
			P90Ms:    fmsF(pct(lat, 0.90)),
			P99Ms:    fmsF(pct(lat, 0.99)),
			MaxMs:    fmsF(pct(lat, 1.0)),
		}
		if name == "events" || name == "response" {
			ingest = append(ingest, lat...)
		}
	}
	sort.Slice(ingest, func(i, j int) bool { return ingest[i] < ingest[j] })
	sc.IngestP50Ms = fmsF(pct(ingest, 0.50))
	sc.IngestP99Ms = fmsF(pct(ingest, 0.99))
	return sc
}

// fmsF is a duration in float milliseconds, rounded to the microsecond
// so the committed baseline diffs stay readable.
func fmsF(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Millisecond)
}

// compareBaseline gates the run against a committed baseline, failing
// any gated scenario whose throughput regressed more than tol. The
// gate's charter is the durability pipeline — the thing the matrix
// varies — so the comparison is chosen for signal over noise:
//
//   - wal and the group-commit scenarios pass if EITHER their absolute
//     req/s OR their req/s relative to the same run's mem ceiling is
//     within tolerance. A genuine storage regression (a window
//     accidentally serialized, an ack held under a lock) tanks both;
//     machine or device noise rarely tanks both in one run, and the
//     mem-relative ratio keeps the gate meaningful on a host whose
//     absolute speed differs from the baseline machine's;
//   - mem is reported but not gated: it has no ceiling to normalize
//     by, and gating a foreign machine's absolute req/s is pure noise.
//     Pure CPU regressions are the Go benchmarks' job, not this gate's;
//   - fsync-record is reported but not gated: its serialized fsync
//     queue amplifies device variance far beyond any useful tolerance
//     (observed >30% run-to-run on one machine), and the code it
//     exercises is the same append path the gated scenarios cover.
func compareBaseline(path string, cur *benchReport, tol float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Printf("bench baseline: %v", err)
		return false
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Printf("bench baseline %s: %v", path, err)
		return false
	}
	ok := true
	for i := range cur.Scenarios {
		sc := &cur.Scenarios[i]
		b := base.scenario(sc.Name)
		if b == nil || b.RequestsPerS <= 0 {
			log.Printf("bench compare %s: no baseline scenario, skipping", sc.Name)
			continue
		}
		absOK := sc.RequestsPerS >= b.RequestsPerS*(1-tol)
		ratioOK := false
		if curMem, baseMem := cur.scenario("mem"), base.scenario("mem"); curMem != nil && baseMem != nil &&
			curMem.RequestsPerS > 0 && baseMem.RequestsPerS > 0 {
			ratioOK = sc.RequestsPerS/curMem.RequestsPerS >= (b.RequestsPerS/baseMem.RequestsPerS)*(1-tol)
		}
		switch {
		case sc.Name == "mem", sc.Name == "fsync-record":
			log.Printf("bench compare %s: %.1f req/s vs baseline %.1f (informational, not gated)",
				sc.Name, sc.RequestsPerS, b.RequestsPerS)
		case absOK, ratioOK:
			log.Printf("bench compare %s: %.1f req/s vs baseline %.1f ok (abs=%v ratio=%v)",
				sc.Name, sc.RequestsPerS, b.RequestsPerS, absOK, ratioOK)
		default:
			log.Printf("bench REGRESSION %s: %.1f req/s vs baseline %.1f — absolute and mem-relative both beyond %.0f%% tolerance",
				sc.Name, sc.RequestsPerS, b.RequestsPerS, tol*100)
			ok = false
		}
	}
	return ok
}
