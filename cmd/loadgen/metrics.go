// Scraping the platform's /metrics endpoint: the load generator reads
// back the server's self-reported latency histograms so a run (and the
// bench report) can cross-check the server's view of ingest latency
// against the client-observed one. The parser speaks just enough of
// the Prometheus text exposition format to read histogram bucket
// series — which doubles as an integration check that the exposition
// is consumable by a real scraper.
package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promHist is one parsed histogram family: sorted bucket upper bounds
// (seconds) with cumulative counts, +Inf last.
type promHist struct {
	bounds []float64 // +Inf excluded; counts has one extra entry for it
	counts []uint64  // cumulative, len(bounds)+1
}

// quantile mirrors telemetry.Histogram.Quantile: linear interpolation
// inside the covering bucket, overflow clamped to the top bound.
func (h *promHist) quantile(q float64) float64 {
	if len(h.counts) == 0 {
		return 0
	}
	total := h.counts[len(h.counts)-1]
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var prev uint64
	for i, cum := range h.counts {
		if float64(cum) >= rank && cum > prev {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - float64(prev)) / float64(cum-prev)
			return lo + (hi-lo)*frac
		}
		prev = cum
	}
	return h.bounds[len(h.bounds)-1]
}

// parseBucketLine splits one exposition line into (metric, labels,
// value), reporting ok=false for comments and non-sample lines.
func parseBucketLine(line string) (metric, labels string, value float64, ok bool) {
	if line == "" || strings.HasPrefix(line, "#") {
		return "", "", 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", "", 0, false
	}
	name := line[:sp]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", "", 0, false
		}
		return name[:i], name[i+1 : len(name)-1], v, true
	}
	return name, "", v, true
}

// labelValue extracts one label's value from a rendered label set.
func labelValue(labels, key string) string {
	for _, kv := range strings.Split(labels, ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// mergeHistograms parses every `metric_bucket` series whose endpoint
// label passes keep and merges their buckets into one histogram (all
// series of one family share bucket bounds by construction).
func mergeHistograms(exposition, metric string, keep func(endpoint string) bool) *promHist {
	byBound := map[float64]uint64{}
	hasInf := false
	var inf uint64
	for _, line := range strings.Split(exposition, "\n") {
		name, labels, v, ok := parseBucketLine(line)
		if !ok || name != metric+"_bucket" || !keep(labelValue(labels, "endpoint")) {
			continue
		}
		le := labelValue(labels, "le")
		if le == "+Inf" {
			inf += uint64(v)
			hasInf = true
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		byBound[bound] += uint64(v)
	}
	if !hasInf {
		return &promHist{}
	}
	h := &promHist{bounds: make([]float64, 0, len(byBound))}
	for b := range byBound {
		h.bounds = append(h.bounds, b)
	}
	sort.Float64s(h.bounds)
	for _, b := range h.bounds {
		h.counts = append(h.counts, byBound[b])
	}
	h.counts = append(h.counts, inf)
	return h
}

// scrapeIngestP99 reads the target's /metrics and returns the server's
// self-reported p99 over the ingest endpoints (events + responses), in
// milliseconds. An error means the endpoint is absent or unreadable —
// the caller decides whether that matters.
func scrapeIngestP99(client *http.Client, target string) (float64, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	ingest := func(endpoint string) bool { return endpoint == "events" || endpoint == "response" }
	h := mergeHistograms(string(body), "eyeorg_http_request_seconds", ingest)
	if len(h.counts) == 0 || h.counts[len(h.counts)-1] == 0 {
		return 0, fmt.Errorf("no ingest samples in exposition")
	}
	return h.quantile(0.99) * 1000, nil
}

// roundMs rounds a float millisecond value to the microsecond, the
// same rounding the client-side report uses.
func roundMs(ms float64) float64 {
	return math.Round(ms*1000) / 1000
}
