// Command loadgen drives the full participant lifecycle — join → video
// fetch → engagement events → responses — against an Eyeorg platform
// server and reports throughput and latency percentiles.
//
// Participants are internal/crowd personas: each session's engagement
// trace and timeline answer come from a simulated participant watching
// the actual video the server returned, so the generated traffic has
// the same shape (diligent majorities, distracted and random-clicking
// tails) as the paper's crowd. Workers fan out through the
// internal/parallel pool.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -duration 10s -concurrency 16
//	loadgen -selftest -duration 2s            # in-process smoke run
//	loadgen -selftest -duration 10s -watch 2s # live §4.3 analytics feed
//	loadgen -selftest -cluster -fsync -duration 5s  # 3-node cluster behind the router
//	loadgen -bench -duration 2s -concurrency 32 -bench-out BENCH_platform.json
//
// With -selftest the target server runs in-process (optionally
// persisted with -data-dir, fsynced with -fsync, group-committed with
// -group-commit), so the command doubles as a CI smoke check: it exits
// non-zero when sessions fail or nothing completes. -max-inflight and
// -worker-rate put the selftest server behind admission control; the
// generator retries 429s (they count as "throttled", not errors) and
// fails the run if any 429 arrives without a Retry-After header. With
// -expect-throttle the run additionally fails unless it saw at least
// one 429 — the CI proof that a saturated in-flight cap answers
// 429 + Retry-After. After every run the generator scrapes the
// server's /metrics and logs the self-reported ingest p99 next to the
// client-observed one.
//
// With -selftest -cluster the in-process target is a 3-node cluster
// behind the campaign router instead of a single server: every node
// runs its own journal (honoring -data-dir/-fsync/-group-commit) and
// ships sealed WAL windows to its follower replica, campaigns spread
// across nodes by consistent hash until each owns at least one, and
// every request travels through the router's ownership resolution —
// the full production scale-out path, driveable from one command.
//
// With -bench the generator runs the durability-mode benchmark matrix
// — in-memory, buffered WAL, per-record fsync, and opportunistic plus
// windowed group-commit fsync — each against a fresh in-process
// server, and writes a machine-readable report (throughput plus
// p50/p99 per endpoint, the events+response "ingest" latency, and the
// server's own /metrics-reported ingest p99) to -bench-out. A sixth
// scenario, video-heavy, hammers the content-addressed video read path
// (conditional, full-body and Range GETs against the in-memory tier)
// and gates an absolute throughput floor and p99 budget; every
// scenario excludes a warmup ramp from its recorded stats, and
// in-memory scenarios fail on pathological p99/p50 skew (see bench.go).
// -bench-compare gates against a committed baseline report: a gated
// scenario fails the run when both its absolute and its mem-relative
// throughput drop more than -bench-tolerance (see compareBaseline in
// bench.go for the per-scenario policy). Each trial additionally runs
// two twins back to back: a telemetry-disabled one (every scenario)
// and a tracing-enabled one (mem at the production 1% sample, the
// windowed group-commit scenario retaining every request). The run
// fails when either instrumentation or request tracing costs more
// than -bench-overhead-tolerance of the disk-free mem scenario's
// throughput (paired per-trial medians; the disk-backed scenarios'
// overheads are reported but too device-noisy to gate on) — the
// checks that keep /metrics and stage tracing effectively free. The
// durable tracing twin also reads /debug/traces back into a per-stage
// ingest p99 breakdown, gated so the stage sum accounts for ≥90% of
// the e2e trace p99 (see runBench in bench.go).
//
// -log-format text|json selects the log/slog handler every line goes
// through, mirroring the server's flag.
//
// With -watch the generator polls the campaign's live quality-analytics
// endpoint (GET /campaigns/{id}/analytics) on the given interval and
// logs the incremental §4.3 verdict counts — the operator's view of
// participant trustworthiness while the campaign is still running.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eyeorg/eyeorg/internal/cluster"
	"github.com/eyeorg/eyeorg/internal/crowd"
	"github.com/eyeorg/eyeorg/internal/metrics"
	"github.com/eyeorg/eyeorg/internal/parallel"
	"github.com/eyeorg/eyeorg/internal/platform"
	"github.com/eyeorg/eyeorg/internal/rng"
	"github.com/eyeorg/eyeorg/internal/sitegen"
	"github.com/eyeorg/eyeorg/internal/survey"
	"github.com/eyeorg/eyeorg/internal/video"
	"github.com/eyeorg/eyeorg/internal/webpeg"
	"github.com/eyeorg/eyeorg/internal/wire"
)

// logger carries every generator line through log/slog, matching the
// server's structured logging. The default (used by tests that call
// runBench/runScenario directly) is the text handler; main replaces it
// per -log-format. logf/fatalf keep the pre-formatted report lines —
// throughput tables, percentile rows — as the msg field rather than
// exploding them into attrs: their consumers are humans and greppers,
// and the JSON handler still wraps them in a parseable envelope.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func logf(format string, args ...any) {
	logger.Info(fmt.Sprintf(format, args...))
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "target server base URL")
		selftest    = flag.Bool("selftest", false, "run against an in-process server")
		clustered   = flag.Bool("cluster", false, "with -selftest: drive an in-process 3-node cluster through the campaign router instead of a single server")
		dataDir     = flag.String("data-dir", "", "persistence dir for the -selftest server (default in-memory); with -bench, the parent for scenario journals (default OS temp dir — beware tmpfs)")
		shards      = flag.Int("shards", 0, "shard count for the -selftest server (0 = default)")
		fsync       = flag.Bool("fsync", false, "fsync the -selftest server's journal before acking mutations")
		groupCommit = flag.Bool("group-commit", false, "group-commit the -selftest server's journal")
		kind        = flag.String("kind", "timeline", "campaign kind: timeline|ab")
		videos      = flag.Int("videos", 4, "videos to capture and upload")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		maxSessions = flag.Int("sessions", 0, "stop after this many sessions (0 = duration only)")
		seed        = flag.Int64("seed", 1, "persona and site-corpus seed")
		watch       = flag.Duration("watch", 0, "poll live quality analytics on this interval (0 = off)")
		binary      = flag.Bool("binary", false, "buffer each session's events and flush them as one EYB1 binary batch")
		maxInflight = flag.Int("max-inflight", 0, "global in-flight request cap for the -selftest server (0 = unlimited)")
		workerRate  = flag.Float64("worker-rate", 0, "per-session req/s cap for the -selftest server (0 = unlimited)")
		expectThrot = flag.Bool("expect-throttle", false, "fail unless the run saw admission-control 429s (saturation selftest)")
		bench       = flag.Bool("bench", false, "run the durability-mode benchmark matrix (in-process servers)")
		benchHTTP   = flag.Bool("bench-http", false, "drive -bench through real HTTP instead of direct handler dispatch")
		benchTrials = flag.Int("bench-trials", 3, "trials per -bench scenario; the median-throughput trial is reported")
		benchOut    = flag.String("bench-out", "BENCH_platform.json", "where -bench writes its report")
		benchCmp    = flag.String("bench-compare", "", "baseline report for -bench to gate throughput against")
		benchTol    = flag.Float64("bench-tolerance", 0.20, "fractional throughput regression -bench-compare tolerates")
		benchOver   = flag.Float64("bench-overhead-tolerance", 0.05, "fractional throughput cost telemetry may have vs an uninstrumented matrix (<0 skips the comparison)")
		logFormat   = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()
	l, err := newLogger(*logFormat)
	if err != nil {
		fatalf("%v", err)
	}
	logger = l

	payloads := capturePayloads(*seed, *videos)

	if *bench {
		if !runBench(benchSettings{
			kind:        *kind,
			concurrency: *concurrency,
			duration:    *duration,
			sessions:    *maxSessions,
			seed:        *seed,
			shards:      *shards,
			payloads:    payloads,
			http:        *benchHTTP,
			trials:      *benchTrials,
			dataDir:     *dataDir,
			out:         *benchOut,
			baseline:    *benchCmp,
			tolerance:   *benchTol,
			overheadTol: *benchOver,
		}) {
			os.Exit(1)
		}
		return
	}

	target := *addr
	var coverage func() bool
	if *selftest && *clustered {
		if *maxInflight != 0 || *workerRate != 0 || *shards != 0 {
			fatalf("-max-inflight, -worker-rate and -shards are single-server options the in-process cluster does not plumb per node")
		}
		dir := *dataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "eyeorg-cluster-*")
			if err != nil {
				fatalf("cluster data dir: %v", err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		cl, err := cluster.New(cluster.Config{
			Nodes: clusterMembers, Dir: dir, Fsync: *fsync, GroupCommit: *groupCommit,
		})
		if err != nil {
			fatalf("selftest cluster: %v", err)
		}
		defer cl.Close()
		coverage = clusterCoverage(cl, clusterMembers)
		ts := httptest.NewServer(cl.Handler())
		defer ts.Close()
		target = ts.URL
		logf("selftest cluster on %s (nodes=%v, dir=%q, fsync=%v, group-commit=%v)",
			target, clusterMembers, dir, *fsync, *groupCommit)
	} else if *selftest {
		srv, err := platform.Open(platform.Options{
			DataDir: *dataDir, Shards: *shards, Fsync: *fsync, GroupCommit: *groupCommit,
			MaxInFlight: *maxInflight, WorkerRate: *workerRate,
		})
		if err != nil {
			fatalf("selftest server: %v", err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		target = ts.URL
		logf("selftest server on %s (shards=%d, data-dir=%q, fsync=%v, group-commit=%v, max-inflight=%d, worker-rate=%g)",
			target, *shards, *dataDir, *fsync, *groupCommit, *maxInflight, *workerRate)
	}

	client := newHTTPClient(*concurrency)
	minCampaigns := 1
	if coverage != nil {
		minCampaigns = len(clusterMembers)
	}
	campaigns, videoIDs, allPayloads, err := seedCampaignSet(client, target, *kind, payloads, minCampaigns, coverage, clusterSeedCap)
	if err != nil {
		fatalf("seeding campaigns: %v", err)
	}
	logf("campaigns %v (%s): %d videos each, %d workers, %v", campaigns, *kind, len(payloads), *concurrency, *duration)

	agg, elapsed := runLoad(loadConfig{
		client:      client,
		target:      target,
		campaigns:   campaigns,
		kind:        *kind,
		concurrency: *concurrency,
		duration:    *duration,
		maxSessions: int64(*maxSessions),
		seed:        *seed,
		watch:       *watch,
		binary:      *binary,
		payloads:    allPayloads,
		videoIDs:    videoIDs,
	})
	report(agg, elapsed)
	for _, campaign := range campaigns {
		reportResults(client, target, campaign)
		reportAnalytics(client, target, campaign)
	}
	if !*clustered {
		// The router's /metrics carries routing counters, not the nodes'
		// ingest histograms, so the p99 cross-check only applies to a
		// single-server target.
		reportServerMetrics(client, target, agg)
	}
	if agg.errors > 0 || agg.sessions == 0 {
		os.Exit(1)
	}
	if agg.badThrottle > 0 {
		logf("FAIL: %d 429 responses arrived without a Retry-After header", agg.badThrottle)
		os.Exit(1)
	}
	if *expectThrot {
		// Open-loop load on a small host may never pile enough truly
		// concurrent requests to trip the cap (handlers that never block
		// finish one at a time on one core), so the selftest saturates
		// the cap deterministically: pin every in-flight slot with a
		// request whose body never finishes arriving, then demand 429 +
		// Retry-After.
		if *selftest && *maxInflight > 0 {
			if err := throttleProbe(client, target, *maxInflight); err != nil {
				logf("FAIL: throttle probe: %v", err)
				os.Exit(1)
			}
			logf("throttle probe: %d pinned in-flight slots → 429 with Retry-After", *maxInflight)
		} else if agg.throttled == 0 {
			logf("FAIL: -expect-throttle set but the run saw no admission-control 429s")
			os.Exit(1)
		}
	}
}

// throttleProbe pins `slots` in-flight requests (their JSON bodies
// stay incomplete, parking each handler in its decoder) and verifies
// the next request bounces with 429 + Retry-After, then releases the
// pins. This is the deterministic proof of the saturated-cap contract,
// independent of how much concurrency the host musters.
func throttleProbe(client *http.Client, target string, slots int) error {
	type pin struct {
		w    *io.PipeWriter
		done chan error
	}
	pins := make([]pin, 0, slots)
	defer func() {
		for _, p := range pins {
			p.w.Close()
			<-p.done
		}
	}()
	for i := 0; i < slots; i++ {
		pr, pw := io.Pipe()
		req, err := http.NewRequest("POST", target+"/api/v1/sessions", pr)
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() {
			resp, err := client.Do(req)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- err
		}()
		// A partial body admits the request and parks it in readJSON.
		if _, err := pw.Write([]byte(`{"campaign":`)); err != nil {
			return err
		}
		pins = append(pins, pin{pw, done})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, hdr, err := doJSON(client, "GET", target+"/api/v1/campaigns/none/results", nil, nil)
		if err != nil {
			return err
		}
		if status == http.StatusTooManyRequests {
			if hdr.Get("Retry-After") == "" {
				return fmt.Errorf("429 without Retry-After")
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no 429 with every in-flight slot pinned (last status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reportServerMetrics cross-checks the server's self-reported ingest
// p99 (scraped from /metrics) against the client-observed one. Absent
// telemetry (older server, -no-telemetry) is not an error.
func reportServerMetrics(client *http.Client, target string, agg *aggregate) {
	serverP99, err := scrapeIngestP99(client, target)
	if err != nil {
		logf("metrics scrape: %v", err)
		return
	}
	var ingest []time.Duration
	ingest = append(ingest, agg.byEndpoint["events"]...)
	ingest = append(ingest, agg.byEndpoint["response"]...)
	sort.Slice(ingest, func(i, j int) bool { return ingest[i] < ingest[j] })
	logf("metrics: server-reported ingest p99 %.2fms vs client-observed %s",
		serverP99, fms(pct(ingest, 0.99)))
}

// newHTTPClient sizes the connection pool for n concurrent workers.
func newHTTPClient(n int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        n * 2,
		MaxIdleConnsPerHost: n * 2,
	}}
}

// loadConfig parameterizes one generation run; bench mode reuses it per
// scenario.
type loadConfig struct {
	client *http.Client
	target string
	// campaigns are the campaigns the run drives; workers partition over
	// them round-robin. A single-campaign run passes a one-element slice;
	// the cluster runs spread several so every node owns live traffic.
	campaigns   []string
	kind        string
	concurrency int
	duration    time.Duration
	maxSessions int64
	seed        int64
	watch       time.Duration
	// binary flushes each session's buffered events as one EYB1 batch
	// POST instead of per-interaction JSON posts — the real client's
	// wire mode.
	binary bool
	// warmup is a ramp that runs the full lifecycle without recording
	// stats: server cold start, first-touch page faults and client-side
	// decode warmup all land here instead of inside the measured
	// percentiles. duration then measures steady state.
	warmup time.Duration
	// videoIDs/payloads (index-aligned, from seedCampaign) let the run
	// pre-decode every video before the clock starts; without them the
	// first session to fetch each video decodes it inline, a hundreds-
	// of-milliseconds CPU burst that starves concurrent requests and
	// used to surface as a absurd join p99 on an in-memory server.
	videoIDs []string
	payloads [][]byte
}

// runLoad fans the persona lifecycle out over the worker pool and
// returns the merged stats plus the measured (post-warmup) wall-clock
// time.
func runLoad(cfg loadConfig) (*aggregate, time.Duration) {
	g := &generator{
		client:    cfg.client,
		target:    cfg.target,
		campaigns: cfg.campaigns,
		kind:      cfg.kind,
		binary:    cfg.binary,
		max:       cfg.maxSessions,
	}
	if len(cfg.videoIDs) == len(cfg.payloads) {
		// Multi-campaign runs upload the same payload set per campaign, so
		// memoize decodes by payload identity instead of decoding the same
		// frames once per campaign copy.
		byPayload := map[*byte]*decodedVideo{}
		for i, id := range cfg.videoIDs {
			p := cfg.payloads[i]
			if len(p) == 0 {
				fatalf("pre-decoding video %s: empty payload", id)
			}
			dv, ok := byPayload[&p[0]]
			if !ok {
				v, err := video.Decode(p)
				if err != nil {
					fatalf("pre-decoding video %s: %v", id, err)
				}
				dv = &decodedVideo{v: v, curves: metrics.Curves(v, nil)}
				byPayload[&p[0]] = dv
			}
			g.decoded.Store(id, dv)
		}
	}
	// Personas partition per worker: each worker owns a slice of the
	// population, so persona RNG state is never shared across
	// goroutines.
	perWorker := 32
	pop := crowd.NewPopulation(rng.New(cfg.seed), crowd.PopulationConfig{Class: crowd.Paid, N: cfg.concurrency * perWorker})

	stopWatch := make(chan struct{})
	var watchDone sync.WaitGroup
	if cfg.watch > 0 {
		for _, campaign := range cfg.campaigns {
			watchDone.Add(1)
			go func(campaign string) {
				defer watchDone.Done()
				watchAnalytics(cfg.client, cfg.target, campaign, cfg.watch, stopWatch)
			}(campaign)
		}
	}

	start := time.Now()
	g.recordFrom = start.Add(cfg.warmup)
	g.deadline = g.recordFrom.Add(cfg.duration)
	stats, err := parallel.Map(cfg.concurrency, cfg.concurrency, func(i int) (*workerStats, error) {
		return g.run(i, pop[i*perWorker:(i+1)*perWorker]), nil
	})
	close(stopWatch)
	watchDone.Wait()
	if err != nil {
		fatalf("worker pool: %v", err)
	}
	return merge(stats), time.Since(g.recordFrom)
}

// capturePayloads builds EYV1 video payloads by capturing a synthetic
// site corpus with webpeg.
func capturePayloads(seed int64, n int) [][]byte {
	pages := sitegen.Generate(sitegen.Config{Seed: seed, Sites: n, AdShare: 0.5, ComplexityScale: 1})
	payloads := make([][]byte, 0, n)
	for _, page := range pages {
		cap, err := webpeg.CaptureSite(page, webpeg.Config{Seed: seed, Loads: 3})
		if err != nil {
			fatalf("capturing %s: %v", page.URL, err)
		}
		payloads = append(payloads, video.Encode(cap.Video))
	}
	return payloads
}

// seedCampaign creates the campaign, uploads the payloads, and returns
// the campaign ID plus the server-assigned video IDs (index-aligned
// with payloads), so callers can pre-decode or target videos directly.
func seedCampaign(client *http.Client, target, kind string, payloads [][]byte) (string, []string, error) {
	var created platform.CreateCampaignResponse
	body := fmt.Sprintf(`{"name":"loadgen","kind":%q}`, kind)
	if _, _, err := doJSON(client, "POST", target+"/api/v1/campaigns", []byte(body), &created); err != nil {
		return "", nil, err
	}
	ids := make([]string, 0, len(payloads))
	for i, p := range payloads {
		var added platform.AddVideoResponse
		if _, _, err := doJSON(client, "POST", target+"/api/v1/campaigns/"+created.ID+"/videos", p, &added); err != nil {
			return "", nil, fmt.Errorf("video %d: %w", i, err)
		}
		ids = append(ids, added.ID)
	}
	return created.ID, ids, nil
}

// clusterMembers is the node set -cluster and the bench's cluster
// scenario bring up: three nodes, the smallest cluster where failover,
// successor chains and partitioning are all non-trivial.
var clusterMembers = []string{"a", "b", "c"}

// clusterSeedCap bounds how many campaigns seedCampaignSet mints while
// chasing a placement goal; the ring spreads router-minted IDs well
// enough that coverage arrives long before this.
const clusterSeedCap = 24

// clusterCoverage reports whether every cluster member owns at least
// one campaign — the placement goal that makes a scale-out run
// exercise all nodes instead of whichever the first IDs hashed to.
func clusterCoverage(cl *cluster.Cluster, members []string) func() bool {
	return func() bool {
		for _, id := range members {
			if len(cl.Node(id).Server().CampaignIDs()) == 0 {
				return false
			}
		}
		return true
	}
}

// seedCampaignSet seeds at least n campaigns, each carrying the full
// payload set, and returns the campaign IDs plus index-aligned video
// IDs and payloads for pre-decoding. With covered non-nil it keeps
// seeding past n until covered() reports the placement goal is met,
// failing at max.
func seedCampaignSet(client *http.Client, target, kind string, payloads [][]byte, n int, covered func() bool, max int) ([]string, []string, [][]byte, error) {
	var campaigns, videoIDs []string
	var all [][]byte
	for len(campaigns) < n || (covered != nil && !covered()) {
		if len(campaigns) >= max {
			return nil, nil, nil, fmt.Errorf("campaign placement goal unmet after %d campaigns", len(campaigns))
		}
		c, ids, err := seedCampaign(client, target, kind, payloads)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("campaign %d: %w", len(campaigns), err)
		}
		campaigns = append(campaigns, c)
		videoIDs = append(videoIDs, ids...)
		all = append(all, payloads...)
	}
	return campaigns, videoIDs, all, nil
}

// --- load generation ---

type generator struct {
	client *http.Client
	target string
	// campaigns partition over workers round-robin: worker w drives
	// campaigns[w%len] for its whole run.
	campaigns []string
	kind      string
	binary    bool
	deadline  time.Time
	// recordFrom is when the warmup ramp ends: sessions and latencies
	// before it are driven but not recorded (the zero value records
	// everything). Errors and throttle-contract violations always count.
	recordFrom time.Time
	max        int64

	sessionNo atomic.Int64
	// decoded caches per-video decoded frames + perceptual curves so
	// personas answer from the frames the server actually served
	// without re-decoding on every session.
	decoded sync.Map // video ID -> *decodedVideo
}

type decodedVideo struct {
	v      *video.Video
	curves metrics.PerceptualCurves
}

type workerStats struct {
	sessions  int64
	completed int64
	errors    int64
	// throttled counts admission-control 429s (retried, not errors);
	// badThrottle counts 429s missing the Retry-After header, a
	// protocol violation that fails the run.
	throttled   int64
	badThrottle int64
	lat         map[string][]time.Duration
}

func newWorkerStats() *workerStats {
	return &workerStats{lat: map[string][]time.Duration{}}
}

func (g *generator) run(worker int, personas []*crowd.Participant) *workerStats {
	st := newWorkerStats()
	campaign := g.campaigns[worker%len(g.campaigns)]
	for i := 0; ; i++ {
		now := time.Now()
		if now.After(g.deadline) {
			return st
		}
		n := g.sessionNo.Add(1)
		if g.max > 0 && n > g.max {
			return st
		}
		// Warmup sessions run the identical lifecycle but stay out of the
		// counters, so sessions/s and completion rates describe steady
		// state only.
		record := now.After(g.recordFrom)
		if record {
			st.sessions++
		}
		p := personas[i%len(personas)]
		if err := g.session(st, campaign, fmt.Sprintf("lg-w%d-s%d", worker, n), p); err != nil {
			st.errors++
		} else if record {
			st.completed++
		}
	}
}

// session drives one participant through the full lifecycle against
// one campaign.
func (g *generator) session(st *workerStats, campaign, workerID string, p *crowd.Participant) error {
	joinBody := fmt.Sprintf(
		`{"campaign":%q,"worker":{"id":%q,"gender":%q,"country":%q,"source":"loadgen"},"captcha":"loadgen"}`,
		campaign, workerID, p.Gender, p.Country)
	var jr platform.JoinResponse
	if err := g.call(st, "join", "POST", g.target+"/api/v1/sessions", []byte(joinBody), &jr); err != nil {
		return err
	}
	if err := g.call(st, "tests", "GET", g.target+"/api/v1/sessions/"+jr.Session+"/tests", nil, nil); err != nil {
		return err
	}
	instr := platform.EventBatch{InstructionMs: ms(p.InstructionTime())}
	eventsURL := g.target + "/api/v1/sessions/" + jr.Session + "/events"
	if g.binary {
		// Wire mode mirrors the real client's buffering: every
		// interaction accumulates locally and the whole session flushes
		// as one EYB1 batch before the answers go up.
		recs := platform.AppendWireRecords(nil, instr)
		resps := make([]platform.ResponseBody, 0, len(jr.Tests))
		for _, tt := range jr.Tests {
			dv, err := g.fetchVideo(st, tt.VideoID)
			if err != nil {
				return err
			}
			batch, resp := g.answer(p, tt, dv)
			recs = platform.AppendWireRecords(recs, batch)
			resps = append(resps, resp)
		}
		if err := g.postWire(st, "events", eventsURL, wire.AppendBatch(nil, recs)); err != nil {
			return err
		}
		for _, resp := range resps {
			if err := g.postJSON(st, "response", g.target+"/api/v1/sessions/"+jr.Session+"/responses", resp); err != nil {
				return err
			}
		}
		return nil
	}
	if err := g.postJSON(st, "events", eventsURL, instr); err != nil {
		return err
	}
	for _, tt := range jr.Tests {
		dv, err := g.fetchVideo(st, tt.VideoID)
		if err != nil {
			return err
		}
		batch, resp := g.answer(p, tt, dv)
		if err := g.postJSON(st, "events", eventsURL, batch); err != nil {
			return err
		}
		if err := g.postJSON(st, "response", g.target+"/api/v1/sessions/"+jr.Session+"/responses", resp); err != nil {
			return err
		}
	}
	return nil
}

// answer produces the persona's engagement batch and answer for one
// test. Timeline answers run the full perception model; A/B tests use
// fixed valid choices (the A/B splice is not served per side here).
func (g *generator) answer(p *crowd.Participant, tt platform.AssignedTest, dv *decodedVideo) (platform.EventBatch, platform.ResponseBody) {
	if g.kind == "ab" {
		choice := "left"
		if tt.Control {
			choice = "no difference" // not the delayed side: passes
		}
		return platform.EventBatch{
				VideoID: tt.VideoID, TimeOnVideoMs: 7000, Plays: 1, WatchedFraction: 1,
			}, platform.ResponseBody{
				TestID: tt.TestID, Choice: choice,
			}
	}
	test := &survey.TimelineTest{VideoID: tt.VideoID, Video: dv.v, Control: tt.Control}
	ans := p.AnswerTimeline(test, dv.curves)
	tr := ans.Trace
	batch := platform.EventBatch{
		VideoID:         tt.VideoID,
		LoadMs:          ms(tr.LoadTime),
		TimeOnVideoMs:   ms(tr.TimeOnVideo),
		Plays:           tr.Plays,
		Pauses:          tr.Pauses,
		Seeks:           tr.Seeks,
		WatchedFraction: tr.WatchedFraction,
		OutOfFocusMs:    ms(tr.OutOfFocus),
	}
	resp := platform.ResponseBody{
		TestID:         tt.TestID,
		SliderMs:       ms(ans.Slider),
		HelperMs:       ms(ans.Helper),
		SubmittedMs:    ms(ans.Submitted),
		AcceptedHelper: ans.AcceptedHelper,
		KeptOriginal:   !ans.AcceptedHelper,
	}
	return batch, resp
}

func (g *generator) fetchVideo(st *workerStats, id string) (*decodedVideo, error) {
	// The video endpoint sits behind the same admission cap as every
	// route, so 429s here get the same treatment as in call(): count,
	// back off briefly, retry.
	var raw []byte
	for attempt := 0; ; attempt++ {
		start := time.Now()
		resp, err := g.client.Get(g.target + "/api/v1/videos/" + id)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if start.After(g.recordFrom) {
			st.lat["video"] = append(st.lat["video"], time.Since(start))
		}
		if rerr != nil {
			return nil, rerr
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 100 {
			st.throttled++
			if resp.Header.Get("Retry-After") == "" {
				st.badThrottle++
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("video %s: status %d", id, resp.StatusCode)
		}
		raw = body
		break
	}
	if dv, ok := g.decoded.Load(id); ok {
		return dv.(*decodedVideo), nil
	}
	v, err := video.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("video %s: %w", id, err)
	}
	dv := &decodedVideo{v: v, curves: metrics.Curves(v, nil)}
	actual, _ := g.decoded.LoadOrStore(id, dv)
	return actual.(*decodedVideo), nil
}

// call makes one API request, transparently retrying admission-control
// 429s: backpressure is the server working as designed, not a failed
// session. A 429 must carry Retry-After — a missing header is counted
// as a contract violation (badThrottle) and fails the run. The backoff
// is deliberately shorter than the header's advice so a saturated
// selftest keeps pressure on the cap instead of politely idling.
func (g *generator) call(st *workerStats, name, method, url string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		start := time.Now()
		status, hdr, err := doJSON(g.client, method, url, body, out)
		if start.After(g.recordFrom) {
			st.lat[name] = append(st.lat[name], time.Since(start))
		}
		if err != nil {
			return err
		}
		if status == http.StatusTooManyRequests && attempt < 100 {
			st.throttled++
			if hdr.Get("Retry-After") == "" {
				st.badThrottle++
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if status < 200 || status >= 300 {
			return fmt.Errorf("%s: status %d", name, status)
		}
		return nil
	}
}

func (g *generator) postJSON(st *workerStats, name, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return g.call(st, name, "POST", url, body, nil)
}

// postWire POSTs one EYB1 batch, with the same 429 retry contract as
// call().
func (g *generator) postWire(st *workerStats, name, url string, payload []byte) error {
	for attempt := 0; ; attempt++ {
		start := time.Now()
		req, err := http.NewRequest("POST", url, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", wire.ContentType)
		resp, err := g.client.Do(req)
		if start.After(g.recordFrom) {
			st.lat[name] = append(st.lat[name], time.Since(start))
		}
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 100 {
			st.throttled++
			if resp.Header.Get("Retry-After") == "" {
				st.badThrottle++
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			return fmt.Errorf("%s: status %d (binary batch)", name, resp.StatusCode)
		}
		return nil
	}
}

// --- plumbing ---

func doJSON(client *http.Client, method, url string, body []byte, out any) (int, http.Header, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if out != nil {
		return resp.StatusCode, resp.Header, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- reporting ---

type aggregate struct {
	sessions, completed, errors int64
	throttled, badThrottle      int64
	requests                    int
	all                         []time.Duration
	byEndpoint                  map[string][]time.Duration
}

func merge(stats []*workerStats) *aggregate {
	agg := &aggregate{byEndpoint: map[string][]time.Duration{}}
	for _, st := range stats {
		if st == nil {
			continue
		}
		agg.sessions += st.sessions
		agg.completed += st.completed
		agg.errors += st.errors
		agg.throttled += st.throttled
		agg.badThrottle += st.badThrottle
		for name, lat := range st.lat {
			agg.byEndpoint[name] = append(agg.byEndpoint[name], lat...)
			agg.all = append(agg.all, lat...)
			agg.requests += len(lat)
		}
	}
	sort.Slice(agg.all, func(i, j int) bool { return agg.all[i] < agg.all[j] })
	for _, lat := range agg.byEndpoint {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	}
	return agg
}

// pct indexes a sorted latency slice at quantile q in [0,1].
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func report(agg *aggregate, elapsed time.Duration) {
	secs := elapsed.Seconds()
	logf("%d sessions (%d completed), %d requests, %d errors, %d throttled in %.2fs",
		agg.sessions, agg.completed, agg.requests, agg.errors, agg.throttled, secs)
	logf("%.1f sessions/s, %.1f req/s", float64(agg.completed)/secs, float64(agg.requests)/secs)
	logf("latency p50=%s p90=%s p99=%s max=%s",
		fms(pct(agg.all, 0.50)), fms(pct(agg.all, 0.90)), fms(pct(agg.all, 0.99)), fms(pct(agg.all, 1.0)))
	names := make([]string, 0, len(agg.byEndpoint))
	for name := range agg.byEndpoint {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lat := agg.byEndpoint[name]
		logf("  %-9s n=%-6d p50=%-9s p99=%s", name, len(lat), fms(pct(lat, 0.50)), fms(pct(lat, 0.99)))
	}
}

func reportResults(client *http.Client, target, campaign string) {
	var res platform.ResultsResponse
	if _, _, err := doJSON(client, "GET", target+"/api/v1/campaigns/"+campaign+"/results", nil, &res); err != nil {
		logf("results: %v", err)
		return
	}
	logf("results: participants=%d kept=%d engagement=%d soft=%d control=%d",
		res.Participants, res.Kept, res.Engagement, res.Soft, res.Control)
}

// fetchAnalytics pulls the campaign's live quality analytics.
func fetchAnalytics(client *http.Client, target, campaign string) (platform.AnalyticsResponse, error) {
	var ar platform.AnalyticsResponse
	status, _, err := doJSON(client, "GET", target+"/api/v1/campaigns/"+campaign+"/analytics", nil, &ar)
	if err != nil {
		return ar, err
	}
	if status != http.StatusOK {
		return ar, fmt.Errorf("status %d", status)
	}
	return ar, nil
}

func analyticsLine(ar platform.AnalyticsResponse) string {
	s := ar.Summary
	line := fmt.Sprintf("sessions=%d completed=%d kept=%d seeks=%d focus=%d soft=%d control=%d videos=%d",
		ar.Sessions, ar.Completed, s.Kept, s.EngagementSeeks, s.EngagementFocus, s.Soft, s.Control, len(ar.PerVideo))
	// Adaptive servers report the stopper's progress: how many videos
	// have resolved to the target half-width, and whether the campaign
	// has closed to new joins.
	if st := ar.Stopping; st != nil {
		line += fmt.Sprintf(" resolved=%d/%d closed=%v", st.Resolved, st.Total, st.Closed)
	}
	return line
}

// watchAnalytics polls the live §4.3 verdicts until stop closes: the
// in-loop quality feedback an operator watches mid-campaign.
func watchAnalytics(client *http.Client, target, campaign string, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			ar, err := fetchAnalytics(client, target, campaign)
			if err != nil {
				logf("watch: %v", err)
				continue
			}
			logf("watch: %s", analyticsLine(ar))
		}
	}
}

func reportAnalytics(client *http.Client, target, campaign string) {
	ar, err := fetchAnalytics(client, target, campaign)
	if err != nil {
		logf("analytics: %v", err)
		return
	}
	logf("analytics: %s", analyticsLine(ar))
}
