package main

import (
	"encoding/json"
	"io"
)

// jsonEncoder returns an indenting JSON encoder.
func jsonEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}
