// Command webpeg captures page-load videos of a synthetic site corpus
// under controlled protocol/network/extension conditions — the video
// capture tool of §3.1. For every site it writes the encoded video
// (.eyv), the HAR of the selected (median-onload) load, and prints the
// computed PLT metrics.
//
// Usage:
//
//	webpeg -sites 10 -seed 2016 -protocol h2 -profile lab -out captures/
//	webpeg -sites 5 -blocker ghostery -ads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webpeg: ")

	var (
		sites    = flag.Int("sites", 10, "number of synthetic sites to capture")
		seed     = flag.Int64("seed", 2016, "corpus and capture seed")
		protocol = flag.String("protocol", "h2", "http/1.1 or h2")
		profile  = flag.String("profile", "lab", "network profile (lab, cable, dsl, lte, 3g)")
		blocker  = flag.String("blocker", "", "ad blocker extension (adblock, ghostery, ublock)")
		ads      = flag.Bool("ads", false, "use the all-ads corpus")
		loads    = flag.Int("loads", 5, "measured loads per site (median onload kept)")
		out      = flag.String("out", "captures", "output directory")
	)
	flag.Parse()

	prof, err := eyeorg.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	blk, err := eyeorg.BlockerNamed(*blocker)
	if err != nil {
		log.Fatal(err)
	}
	cfg := eyeorg.CaptureConfig{
		Seed:    *seed,
		Loads:   *loads,
		Profile: prof,
		Blocker: blk,
	}
	switch *protocol {
	case "http/1.1", "h1":
		cfg.Protocol = eyeorg.HTTP1
	case "h2", "http/2":
		cfg.Protocol = eyeorg.HTTP2
	default:
		log.Fatalf("unknown protocol %q (use http/1.1 or h2)", *protocol)
	}

	var pages []*eyeorg.Page
	if *ads {
		pages = eyeorg.GenerateAdCorpus(*seed, *sites)
	} else {
		pages = eyeorg.GenerateCorpus(*seed, *sites, 0.65)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %9s %10s %9s %9s %9s\n", "site", "onload", "speedindex", "firstvis", "lastvis", "video")
	for i, page := range pages {
		cap, err := eyeorg.CaptureSite(page, cfg)
		if err != nil {
			log.Fatalf("capture %s: %v", page.URL, err)
		}
		plt := eyeorg.ComputePLT(cap.Video, cap.Selected.OnLoad)

		base := filepath.Join(*out, fmt.Sprintf("site-%03d", i))
		if err := os.WriteFile(base+".eyv", eyeorg.EncodeVideo(cap.Video), 0o644); err != nil {
			log.Fatal(err)
		}
		harFile, err := os.Create(base + ".har")
		if err != nil {
			log.Fatal(err)
		}
		if err := writeHAR(harFile, cap); err != nil {
			log.Fatal(err)
		}
		_ = harFile.Close()

		fmt.Printf("%-28s %8.2fs %9.2fs %8.2fs %8.2fs %s.eyv\n",
			page.Host,
			plt.OnLoad.Seconds(), plt.SpeedIndex.Seconds(),
			plt.FirstVisualChange.Seconds(), plt.LastVisualChange.Seconds(),
			filepath.Base(base))
	}
}

// writeHAR serialises the selected load's archive.
func writeHAR(f *os.File, cap *eyeorg.Capture) error {
	type harDoc struct {
		Log any `json:"log"`
	}
	enc := jsonEncoder(f)
	return enc.Encode(harDoc{Log: cap.Selected.HAR})
}
