// Command campaign runs one Eyeorg measurement campaign end to end:
// corpus generation, webpeg capture, recruitment, response collection,
// and §4.3 filtering — then prints the Table-1 row and per-video results.
//
// Usage:
//
//	campaign -kind timeline -sites 20 -participants 100
//	campaign -kind h1h2 -sites 20 -participants 100
//	campaign -kind ads -sites 20 -participants 100 -blocker ghostery
//	campaign -kind timeline -service trusted-invites
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/eyeorg/eyeorg"
	"github.com/eyeorg/eyeorg/internal/recruit"
	"github.com/eyeorg/eyeorg/internal/stats"
	"github.com/eyeorg/eyeorg/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	var (
		kind         = flag.String("kind", "timeline", "timeline, h1h2, or ads")
		sites        = flag.Int("sites", 20, "number of sites")
		participants = flag.Int("participants", 100, "participant target")
		service      = flag.String("service", "crowdflower", "crowdflower, microworkers, or trusted-invites")
		blocker      = flag.String("blocker", "ghostery", "blocker for -kind ads")
		seed         = flag.Int64("seed", 2016, "campaign seed")
		loads        = flag.Int("loads", 5, "webpeg loads per capture")
		workers      = flag.Int("workers", 0, "capture/session concurrency (0 = NumCPU, 1 = serial; results are identical)")
	)
	flag.Parse()

	svc, err := recruit.ByName(*service)
	if err != nil {
		log.Fatal(err)
	}
	cfg := eyeorg.CaptureConfig{Seed: *seed, Loads: *loads, Workers: *workers}

	var campaign *eyeorg.Campaign
	switch *kind {
	case "timeline":
		pages := eyeorg.GenerateCorpus(*seed, *sites, 0.65)
		campaign, err = eyeorg.BuildTimelineCampaign("timeline", pages, cfg)
	case "h1h2":
		pages := eyeorg.GenerateCorpus(*seed, *sites, 0.65)
		cfgA, cfgB := cfg, cfg
		cfgA.Protocol = eyeorg.HTTP1
		cfgB.Protocol = eyeorg.HTTP2
		campaign, err = eyeorg.BuildABCampaign("h1-vs-h2", pages, cfgA, cfgB)
	case "ads":
		blk, berr := eyeorg.BlockerNamed(*blocker)
		if berr != nil || blk == nil {
			log.Fatalf("-kind ads needs a valid -blocker: %v", berr)
		}
		pages := eyeorg.GenerateAdCorpus(*seed, *sites)
		cfgB := cfg
		cfgB.Blocker = blk
		campaign, err = eyeorg.BuildABCampaign("ads-vs-"+blk.Name, pages, cfg, cfgB)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("campaign %q built: %d units; recruiting %d participants via %s",
		campaign.Name, campaign.Units(), *participants, svc.Name)

	run, err := eyeorg.RunCampaignWorkers(campaign, svc, *participants, *workers)
	if err != nil {
		log.Fatal(err)
	}
	row := run.Stats()
	fmt.Println()
	_ = viz.Table(os.Stdout,
		[]string{"campaign", "class", "participants", "m/f", "duration", "cost", "sites", "engagement", "soft", "control", "kept"},
		[][]string{{
			row.Name, row.Class.String(),
			fmt.Sprint(row.Participants),
			fmt.Sprintf("%d/%d", row.Male, row.Female),
			fmt.Sprintf("%.1fh", row.Duration.Hours()),
			fmt.Sprintf("$%.2f", row.CostDollars),
			fmt.Sprint(row.Sites),
			fmt.Sprint(row.Filtered.Engagement()),
			fmt.Sprint(row.Filtered.Soft),
			fmt.Sprint(row.Filtered.Control),
			fmt.Sprint(row.Filtered.Kept),
		}})
	fmt.Println()

	switch *kind {
	case "timeline":
		byVideo := eyeorg.WisdomOfCrowd(eyeorg.TimelineByVideo(run.KeptRecords()))
		ids := make([]string, 0, len(byVideo))
		for id := range byVideo {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("%-32s %5s %10s %9s\n", "video", "n", "mean UPLT", "stdev")
		for _, id := range ids {
			s := stats.Sample(byVideo[id])
			fmt.Printf("%-32s %5d %9.2fs %8.2fs\n", id, len(s), s.Mean(), s.Stdev())
		}
	default:
		votes := eyeorg.ABByVideo(run.KeptRecords())
		ids := make([]string, 0, len(votes))
		for id := range votes {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("%-32s %5s %7s %7s %7s %7s %10s\n", "pair", "n", "A", "B", "nodiff", "score", "agreement")
		for _, id := range ids {
			v := votes[id]
			score, ok := v.Score()
			scoreStr := "-"
			if ok {
				scoreStr = fmt.Sprintf("%.2f", score)
			}
			fmt.Printf("%-32s %5d %7d %7d %7d %7s %9.0f%%\n",
				id, v.Total(), v.A, v.B, v.NoDiff, scoreStr, 100*v.Agreement())
		}
	}
}
