// Command eyeviz is the response-visualization tool of Figure 1: it runs
// a small timeline campaign and renders each video's UserPerceivedPLT
// responses as a timeline histogram with the machine metrics marked, so
// patterns like the two-mode "ready before the ads" distribution are
// visible at a glance.
//
// Usage:
//
//	eyeviz -sites 8 -participants 120 -video 3
//	eyeviz -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/eyeorg/eyeorg"
	"github.com/eyeorg/eyeorg/internal/stats"
	"github.com/eyeorg/eyeorg/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eyeviz: ")
	var (
		sites        = flag.Int("sites", 8, "number of sites")
		participants = flag.Int("participants", 120, "participants")
		seed         = flag.Int64("seed", 2016, "seed")
		videoIdx     = flag.Int("video", -1, "render one video index (-1 with -all renders all)")
		all          = flag.Bool("all", false, "render every video")
	)
	flag.Parse()

	pages := eyeorg.GenerateAdCorpus(*seed, *sites)
	campaign, err := eyeorg.BuildTimelineCampaign("viz", pages, eyeorg.CaptureConfig{Seed: *seed, Loads: 3})
	if err != nil {
		log.Fatal(err)
	}
	run, err := eyeorg.RunCampaign(campaign, eyeorg.CrowdFlower, *participants)
	if err != nil {
		log.Fatal(err)
	}
	byVideo := eyeorg.TimelineByVideo(run.KeptRecords())

	render := func(i int) {
		u := campaign.Timeline[i]
		responses := byVideo[u.ID]
		if len(responses) == 0 {
			fmt.Printf("%s: no responses\n", u.ID)
			return
		}
		markers := []viz.Marker{
			{Name: "onload", At: u.PLT.OnLoad.Seconds()},
			{Name: "speedindex", At: u.PLT.SpeedIndex.Seconds()},
			{Name: "firstvisual", At: u.PLT.FirstVisualChange.Seconds()},
			{Name: "lastvisual", At: u.PLT.LastVisualChange.Seconds()},
		}
		err := eyeorg.ResponseTimeline(os.Stdout,
			fmt.Sprintf("%s  (mean UPLT %.2fs)", u.ID, stats.Sample(responses).Mean()),
			responses, markers, u.Duration.Seconds())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	switch {
	case *all:
		for i := range campaign.Timeline {
			render(i)
		}
	case *videoIdx >= 0 && *videoIdx < len(campaign.Timeline):
		render(*videoIdx)
	default:
		// Pick the most multi-modal video, like Figure 1(b).
		best, bestSpread := 0, 0.0
		for i, u := range campaign.Timeline {
			modes := stats.Modes(byVideo[u.ID], 0)
			if len(modes) >= 2 {
				if spread := modes[len(modes)-1] - modes[0]; spread > bestSpread {
					best, bestSpread = i, spread
				}
			}
		}
		render(best)
	}
}
