// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 1, 4, 5, 6, 7, 8, 9) from a single seeded
// pipeline. See DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	experiments                  # quick scale (minutes of laptop time)
//	experiments -scale paper     # 100 sites, 1000 participants/campaign
//	experiments -only table1,fig8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/eyeorg/eyeorg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale   = flag.String("scale", "quick", "quick or paper")
		only    = flag.String("only", "", "comma-separated subset: table1,fig1,fig4,fig5,fig6,fig7,fig8,fig9,ext")
		seed    = flag.Int64("seed", 0, "override campaign seed (0 = default)")
		workers = flag.Int("workers", 0, "capture/session/figure concurrency (0 = NumCPU, 1 = serial; results are identical)")
	)
	flag.Parse()

	var cfg eyeorg.ExperimentConfig
	switch *scale {
	case "quick":
		cfg = eyeorg.QuickScale()
	case "paper":
		cfg = eyeorg.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	suite := eyeorg.NewExperimentSuite(cfg)

	if *only == "" {
		if err := eyeorg.RenderAllExperimentsParallel(suite, os.Stdout, *workers); err != nil {
			log.Fatal(err)
		}
		if err := suite.RenderExtensions(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	steps := map[string]func(io.Writer) error{
		"table1": suite.RenderTable1,
		"fig1":   suite.RenderFigure1,
		"fig4":   suite.RenderFigure4,
		"fig5":   suite.RenderFigure5,
		"fig6":   suite.RenderFigure6,
		"fig7":   suite.RenderFigure7,
		"fig8":   suite.RenderFigure8,
		"fig9":   suite.RenderFigure9,
		"ext":    suite.RenderExtensions,
	}
	for _, name := range strings.Split(*only, ",") {
		step, ok := steps[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("unknown artefact %q", name)
		}
		if err := step(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
